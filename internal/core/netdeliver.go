package core

import (
	"fmt"
	"sync"

	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/transport"
	"tap/internal/wire"
)

// NetEngine drives tunnel traffic through a transport, the measurement
// substrate for Figure 6. The same layer formats and hop logic as the
// logical walker apply, but every overlay hop is a real store-and-forward
// network transmission with latency and serialization delay, so
// end-to-end transfer times are meaningful.
//
// The engine is written against the transport seam (internal/transport),
// never a concrete network: under simtransport (the discrete-event
// emulator) behavior is deterministic and bit-identical to the
// pre-seam engine; the same machinery drives real sockets when handed a
// tcptransport. All engine callbacks run on the transport's event loop.
type NetEngine struct {
	svc *Service
	net transport.Transport

	nextFlow uint64
	done     map[uint64]func(Outcome)
	// pending tracks flows whose outcome has not fired yet, so a
	// duplicate or late packet of a finished flow can never re-count it.
	pending map[uint64]struct{}

	// Reliability state (reliable.go). rel == nil means the protocol is
	// off and flows behave as fire-and-forget.
	rel    *Reliability
	flows  map[uint64]*flowState
	acked  map[uint64]ackRecord
	jitter *rng.Stream
	// staleHints records (hop target, address) pairs observed to be dead
	// ends — a direct send that missed, or a hinted address a sender
	// could not reach — so later dispatches fall back to DHT routing
	// instead of repeating the same miss.
	staleHints map[hintKey]struct{}
	// tunnelRTO remembers the backed-off retransmit timeout per tunnel
	// (keyed by first hop), so a new flow over a tunnel that just proved
	// lossy starts from the inherited backoff instead of resetting it.
	// rtoMu guards it: on the simulated transport every access happens on
	// the single event loop, but applications running over a real
	// transport may open streams from their own goroutines, making this
	// the first engine map reachable from more than one goroutine.
	rtoMu     sync.Mutex
	tunnelRTO map[id.ID]simnet.Time

	// Windowed-stream state (stream.go).
	nextStream    uint64
	sendStreams   map[uint64]*Stream
	recvStreams   map[uint64]*RecvStream
	closedStreams map[uint64]closedStreamRec
	// OnStream, when non-nil, observes each incoming stream when its first
	// segment arrives, so the application can install OnData/OnClose.
	OnStream func(rs *RecvStream)

	// Packet and segment-buffer freelists. The event loop is single-
	// threaded, so plain slices suffice; in steady state the stream hot
	// path allocates nothing.
	pktFree  []*packet
	segPools map[int][][]byte

	// Stats across all flows.
	NetHops   uint64
	HintHits  uint64
	HintMiss  uint64
	FailFlows uint64
	// Reliability stats.
	Retransmits   uint64 // extra attempts beyond each flow's first
	AcksSent      uint64 // end-to-end ACKs transmitted by terminals
	AcksRecv      uint64 // ACKs consumed by initiators (first per flow)
	DupDeliveries uint64 // duplicate data arrivals at terminals
	PacketsLost   uint64 // reliable-flow packets that died mid-flight
	StaleHints    uint64 // distinct hints invalidated
	// Windowed-stream stats (stream.go).
	StreamSegsSent  uint64 // original segment transmissions
	StreamSegsRetx  uint64 // segment retransmissions (timeout or fast)
	StreamFastRetx  uint64 // fast retransmits triggered by duplicate ACKs
	StreamTimeouts  uint64 // RTO expirations
	StreamAcksSent  uint64 // stream ACK frames transmitted by receivers
	StreamDupSegs   uint64 // duplicate segment arrivals suppressed
	StreamSegsLost  uint64 // segments that died mid-route (node death)
	StreamBytesRecv uint64 // in-order payload bytes delivered to applications

	// OnDeliver, when non-nil, observes every data arrival at a flow's
	// terminal: dup=false is the first delivery handed to the application,
	// dup=true a suppressed duplicate. The simulation checker counts these
	// to verify exactly-once delivery under retransmission.
	OnDeliver func(flow uint64, dup bool)

	// DisableAckDedup is a fault-injection seam in the spirit of
	// Service.HopFilter: when set, the terminal forgets it already
	// delivered a reliable flow and hands every duplicate arrival to the
	// application as if it were fresh. The simulation checker plants it to
	// prove the exactly-once invariant fires. Never set it otherwise.
	DisableAckDedup bool

	// StreamReorderBypass is a fault-injection seam: when set, stream
	// receivers hand every segment to the application in arrival order,
	// skipping the reorder buffer and its dedup. The simulation checker
	// plants it to prove the in-order-stream-delivery invariant fires.
	// Never set it otherwise.
	StreamReorderBypass bool

	// StreamWindowBypass is a fault-injection seam: when set, stream
	// senders ignore their configured window and keep up to four windows
	// of segments in flight. The simulation checker plants it to prove
	// the window-conservation invariant fires. Never set it otherwise.
	StreamWindowBypass bool

	// Tap, when non-nil, observes the protocol events a node operator
	// can see at its own node: tunnel envelopes received, and exits
	// performed (a tail hop knows it is the tail — it decrypts {D, m}).
	// Adversary instrumentation (internal/timing) filters to the nodes it
	// controls. The flow id is passed for ground-truth evaluation only; a
	// real attacker never sees it, and correlators must not match on it.
	Tap NetTap
}

// NetTap receives node-local protocol observations.
type NetTap interface {
	// EnvelopeReceived fires when a node receives a forward-tunnel
	// envelope addressed to a hop it serves (before decryption).
	EnvelopeReceived(at simnet.Addr, now simnet.Time, from simnet.Addr, flow uint64)
	// EnvelopeForwarded fires when a node relays a tunnel envelope
	// onward (as a hop or as a plain DHT router), with the address it
	// received it from — knowledge a node trivially has about itself,
	// which lets a collusion chain-trace through its own members.
	EnvelopeForwarded(at simnet.Addr, now simnet.Time, from simnet.Addr)
	// ExitObserved fires when a tail hop decrypts an exit layer and
	// learns the destination.
	ExitObserved(at simnet.Addr, now simnet.Time, flow uint64, dest id.ID)
}

// Outcome reports one completed (or failed) flow.
type Outcome struct {
	Flow      uint64
	Delivered bool
	At        simnet.Time
	NetHops   int
	FailedAt  string // empty on success
	// Attempts is the number of end-to-end send attempts (1 without the
	// reliability protocol); Backoff is the time spent waiting in
	// retransmit timers — the gap between the first and last attempt.
	Attempts int
	Backoff  simnet.Time
}

// packet kinds.
const (
	kindPayload   byte = iota + 1 // plain payload riding to Target's owner
	kindForward                   // forward-tunnel envelope
	kindReply                     // reply-tunnel envelope
	kindAck                       // end-to-end delivery ACK (reliability protocol)
	kindStream                    // windowed-stream data segment (stream.go)
	kindStreamAck                 // cumulative+SACK stream acknowledgment (stream.go)
)

// packet is the single wire message type: content plus DHT routing state.
type packet struct {
	kind   byte
	flow   uint64
	target id.ID // DHT routing target; owner of this id consumes/processes
	direct bool  // true when sent straight to an address hint
	hops   int   // network hops taken so far
	// lastFrom is the network-level sender of the most recent hop —
	// what a receiving node sees as its predecessor.
	lastFrom simnet.Addr

	payloadSize int            // kindPayload
	env         *Envelope      // kindForward
	renv        *ReplyEnvelope // kindReply

	// Reliability fields. ackTo is the initiator-side address a terminal
	// ACKs to (zero-valued on fire-and-forget flows, where it is never
	// read); dataHops is, on a kindAck, the hop count of the data packet
	// being acknowledged.
	ackTo    simnet.Addr
	dataHops int

	// Windowed-stream fields (stream.go). On kindStream: seq, fin, and the
	// segment payload (data aliases the sender's window slot — safe because
	// the slot is rewritten only after the receiver has acknowledged this
	// seq, and any later copy is deduplicated by seq before data is read).
	// On kindStreamAck: cum plus the selective ranges, wire.AckVerSACK.
	seq    uint64
	fin    bool
	data   []byte
	cum    uint64
	ranges []wire.AckRange
}

// SizeBytes implements simnet.Message.
func (p *packet) SizeBytes() int {
	const header = 1 + 8 + id.Size + 1
	switch p.kind {
	case kindForward:
		return header + p.env.SizeBytes()
	case kindReply:
		return header + p.renv.SizeBytes()
	case kindAck:
		return header + 8
	case kindStream:
		return header + 8 + 1 + 8 + 2 + len(p.data) // seq, fin, ackTo, len prefix
	case kindStreamAck:
		return header + wire.AckSizeSACK(len(p.ranges))
	default:
		return header + p.payloadSize
	}
}

// NewNetEngine attaches handlers for every currently live node and for
// future joiners. net is any transport implementation; the experiments
// and tests pass the simulated network, which satisfies the interface
// directly.
func NewNetEngine(svc *Service, net transport.Transport) *NetEngine {
	e := &NetEngine{
		svc: svc, net: net,
		done:          make(map[uint64]func(Outcome)),
		pending:       make(map[uint64]struct{}),
		flows:         make(map[uint64]*flowState),
		acked:         make(map[uint64]ackRecord),
		staleHints:    make(map[hintKey]struct{}),
		tunnelRTO:     make(map[id.ID]simnet.Time),
		sendStreams:   make(map[uint64]*Stream),
		recvStreams:   make(map[uint64]*RecvStream),
		closedStreams: make(map[uint64]closedStreamRec),
		segPools:      make(map[int][][]byte),
		jitter:        svc.Stream.Split("netengine-jitter"),
	}
	for _, r := range svc.OV.LiveRefs() {
		e.attach(r.Addr)
	}
	// Joiners get handlers too; departures are handled by simnet drops
	// (the experiment harness detaches failed nodes from the network).
	prevJoin := svc.OV.OnJoin
	svc.OV.OnJoin = func(n *pastry.Node) {
		if prevJoin != nil {
			prevJoin(n)
		}
		e.net.Grow(int(n.Ref().Addr) + 1)
		e.attach(n.Ref().Addr)
	}
	return e
}

// attach binds the engine's handler to one address.
func (e *NetEngine) attach(addr simnet.Addr) {
	e.net.Attach(addr, simnet.HandlerFunc(func(from simnet.Addr, msg simnet.Message) {
		pkt, ok := msg.(*packet)
		if !ok {
			// Traffic that is not tunnel protocol — e.g. cover dummies —
			// is consumed and discarded.
			return
		}
		pkt.lastFrom = from
		e.deliver(addr, pkt)
	}))
}

// newFlow registers a completion callback and returns the flow id.
func (e *NetEngine) newFlow(done func(Outcome)) uint64 {
	e.nextFlow++
	e.pending[e.nextFlow] = struct{}{}
	if done != nil {
		e.done[e.nextFlow] = done
	}
	return e.nextFlow
}

// finish concludes p at this node: the terminal was reached (delivered) or
// the packet died here. On a reliable flow, delivery triggers an
// end-to-end ACK and a death is left to the initiator's retransmit timer;
// otherwise the flow outcome fires once — duplicate or late packets of an
// already-finished flow are ignored rather than re-counted.
func (e *NetEngine) finish(self simnet.Addr, p *packet, delivered bool, why string) {
	if p.kind == kindStream || p.kind == kindStreamAck {
		// Stream traffic has its own retransmit machinery; a segment or
		// ACK dying mid-route is recovered by the sender's RTO, not by a
		// flow outcome. Stream ids live in their own space, so the flow
		// maps below must never see them.
		e.StreamSegsLost++
		return
	}
	if st, ok := e.flows[p.flow]; ok {
		// The flow is still pending under the reliability protocol.
		if delivered {
			e.ackDelivery(self, p)
		} else {
			st.lastErr = why
			e.PacketsLost++
		}
		return
	}
	if delivered {
		if rec, ok := e.acked[p.flow]; ok {
			// A duplicate of an already-ACKed delivery: the earlier ACK
			// may have been lost, so re-ACK, but never re-deliver.
			e.DupDeliveries++
			// With dedup sabotaged the duplicate is (wrongly) fresh.
			e.observeDeliver(p.flow, !e.DisableAckDedup)
			e.sendAck(self, p.flow, rec)
			return
		}
	}
	if _, open := e.pending[p.flow]; !open {
		return // duplicate or late packet of a finished flow
	}
	delete(e.pending, p.flow)
	if delivered {
		e.observeDeliver(p.flow, false)
	} else {
		e.FailFlows++
	}
	cb, ok := e.done[p.flow]
	if !ok {
		return
	}
	delete(e.done, p.flow)
	cb(Outcome{
		Flow:      p.flow,
		Delivered: delivered,
		At:        e.net.Now(),
		NetHops:   p.hops,
		FailedAt:  why,
		Attempts:  1,
	})
}

// send transmits p one network hop.
func (e *NetEngine) send(from, to simnet.Addr, p *packet) {
	// Relays of tunnel envelopes are observable self-knowledge for a
	// wiretap at `from`: it can later recognize receptions downstream of
	// its own relaying as continuations. Originations (hops == 0) are not
	// relays.
	if e.Tap != nil && p.kind == kindForward && p.hops > 0 {
		e.Tap.EnvelopeForwarded(from, e.net.Now(), p.lastFrom)
	}
	p.hops++
	e.NetHops++
	e.net.Send(from, to, p)
}

// forwardToward moves p one Pastry hop toward its target, or processes it
// here if this node is the destination.
func (e *NetEngine) forwardToward(self simnet.Addr, p *packet) {
	node := e.svc.OV.Node(self)
	if node == nil || !node.Alive() {
		e.finish(self, p, false, fmt.Sprintf("node %d died holding packet", self))
		return
	}
	next, deliverHere := node.NextHop(p.target)
	if !deliverHere {
		e.send(self, next.Addr, p)
		return
	}
	e.process(self, p)
}

// deliver is the per-node network handler.
func (e *NetEngine) deliver(self simnet.Addr, p *packet) {
	if p.kind == kindAck {
		e.handleAck(p)
		return
	}
	if p.kind == kindStreamAck {
		e.handleStreamAck(p)
		return
	}
	if p.direct {
		// A hint shortcut landed here. If this node can act on the packet
		// (it holds the hop anchor), process it; otherwise the hint was
		// stale and the node falls back to DHT routing toward the target.
		p.direct = false
		switch p.kind {
		case kindForward:
			if e.svc.Dir.Manager().HolderHas(self, p.env.HopID) {
				e.HintHits++
				e.process(self, p)
				return
			}
		case kindReply:
			if e.svc.Dir.Manager().HolderHas(self, p.renv.Target) {
				e.HintHits++
				e.process(self, p)
				return
			}
		case kindStream:
			// The hint pointed straight at the destination owner; if this
			// node still owns the target id, consume the segment here.
			if node := e.svc.OV.Node(self); node != nil && node.Alive() {
				if _, here := node.NextHop(p.target); here {
					e.HintHits++
					e.process(self, p)
					return
				}
			}
		}
		e.HintMiss++
		// The hinted node does not serve this hop any more: remember the
		// dead end so retransmissions and later flows go via the DHT.
		e.markStaleHint(p.target, self)
		e.forwardToward(self, p)
		return
	}
	e.forwardToward(self, p)
}

// process handles a packet that has reached the owner of its target id.
func (e *NetEngine) process(self simnet.Addr, p *packet) {
	switch p.kind {
	case kindPayload:
		e.finish(self, p, true, "")

	case kindStream:
		e.handleStreamData(self, p)

	case kindForward:
		if e.Tap != nil && e.svc.Dir.Manager().HolderHas(self, p.env.HopID) {
			e.Tap.EnvelopeReceived(self, e.net.Now(), p.lastFrom, p.flow)
		}
		if !e.svc.hopServes(self, p.env.HopID) {
			e.finish(self, p, false, fmt.Sprintf("hop %s dropped at node %d", p.env.HopID.Short(), self))
			return
		}
		anchor, err := e.svc.Dir.FetchAsHolder(self, p.env.HopID)
		if err != nil {
			e.finish(self, p, false, fmt.Sprintf("hop %s lost", p.env.HopID.Short()))
			return
		}
		layer, err := OpenForwardLayer(anchor, p.env.Sealed)
		if err != nil {
			e.finish(self, p, false, fmt.Sprintf("hop %s: %v", p.env.HopID.Short(), err))
			return
		}
		if layer.IsExit {
			if e.Tap != nil {
				e.Tap.ExitObserved(self, e.net.Now(), p.flow, layer.Dest)
			}
			if wire.IsStreamSegment(layer.Payload) {
				// A windowed-stream segment rode the tunnel: unwrap the
				// framing and route the segment to the destination owner.
				// The data slice aliases the exit's fresh decrypt buffer.
				stream, seq, fin, ackTo, data, err := wire.ReadStreamSegment(layer.Payload)
				if err != nil {
					e.StreamSegsLost++
					return
				}
				out := e.getPacket()
				out.kind, out.flow, out.target = kindStream, stream, layer.Dest
				out.hops, out.lastFrom = p.hops, p.lastFrom
				out.seq, out.fin, out.data = seq, fin, data
				out.ackTo = simnet.Addr(ackTo)
				e.forwardToward(self, out)
				return
			}
			// Tail hop: route the payload to the destination owner.
			out := &packet{
				kind: kindPayload, flow: p.flow, target: layer.Dest,
				hops: p.hops, payloadSize: len(layer.Payload),
				ackTo: p.ackTo,
			}
			e.forwardToward(self, out)
			return
		}
		env := &Envelope{HopID: layer.Next, Hint: layer.NextHint, Sealed: layer.Inner}
		// Link padding: keep the wire size constant so an observer cannot
		// read the tunnel position off the message length.
		env.PadToMatch(p.env.SizeBytes())
		next := &packet{
			kind: kindForward, flow: p.flow, target: layer.Next, hops: p.hops,
			env: env,
			// The hop's own relay origin is whoever handed it the
			// incoming envelope.
			lastFrom: p.lastFrom,
			ackTo:    p.ackTo,
		}
		e.dispatch(self, next, layer.NextHint)

	case kindReply:
		anchor, err := e.svc.Dir.FetchAsHolder(self, p.renv.Target)
		if err != nil {
			// No anchor here: final delivery point (the initiator, when
			// the tunnel held).
			e.finish(self, p, true, "")
			return
		}
		if !e.svc.hopServes(self, p.renv.Target) {
			e.finish(self, p, false, fmt.Sprintf("reply hop %s dropped at node %d", p.renv.Target.Short(), self))
			return
		}
		next, hint, rest, err := OpenReplyLayer(anchor, p.renv.Onion)
		if err != nil {
			e.finish(self, p, false, fmt.Sprintf("reply hop %s: %v", p.renv.Target.Short(), err))
			return
		}
		renv := &ReplyEnvelope{Target: next, Hint: hint, Onion: rest, Data: p.renv.Data}
		renv.PadToMatch(p.renv.SizeBytes())
		out := &packet{
			kind: kindReply, flow: p.flow, target: next, hops: p.hops,
			renv:  renv,
			ackTo: p.ackTo,
		}
		e.dispatch(self, out, hint)
	}
}

// dispatch sends a packet toward its target, trying the address hint
// first. A hint to a detached or crashed address is detected by the
// sender (the connection attempt fails), invalidated, and the packet
// falls back to DHT routing immediately; a hint already known stale is
// skipped without a connection attempt.
func (e *NetEngine) dispatch(self simnet.Addr, p *packet, hint simnet.Addr) {
	if hint != simnet.NoAddr && hint != self && !e.hintStale(p.target, hint) {
		if e.net.Reachable(hint) {
			p.direct = true
			e.send(self, hint, p)
			return
		}
		e.markStaleHint(p.target, hint)
	}
	if hint != simnet.NoAddr {
		e.HintMiss++
	}
	e.forwardToward(self, p)
}

// SendOvert starts a plain overt transfer and returns its flow id: size bytes routed over the
// P2P infrastructure from `from` to the owner of dest. The baseline curve
// of Figure 6.
func (e *NetEngine) SendOvert(from simnet.Addr, dest id.ID, size int, done func(Outcome)) uint64 {
	flow := e.newFlow(done)
	if e.rel != nil {
		e.startReliable(flow, from, size, SendOpts{}, func() (*packet, simnet.Addr) {
			return &packet{kind: kindPayload, flow: flow, target: dest, payloadSize: size, ackTo: from}, simnet.NoAddr
		})
		return flow
	}
	e.forwardToward(from, &packet{kind: kindPayload, flow: flow, target: dest, payloadSize: size})
	return flow
}

// SendForward starts a forward-tunnel transfer from the initiator's
// address. With hints inside env (built via a HintCache) this is TAP_opt;
// without, TAP_basic.
func (e *NetEngine) SendForward(from simnet.Addr, env *Envelope, done func(Outcome)) uint64 {
	return e.SendForwardOpt(from, env, SendOpts{}, done)
}

// SendForwardOpt is SendForward with per-flow options: a custom attempt
// budget (health probes) and the hint-cache binding that lets exhaustion
// invalidate a dead tunnel's hints. The options only apply under the
// reliability protocol; a fire-and-forget flow ignores them.
func (e *NetEngine) SendForwardOpt(from simnet.Addr, env *Envelope, opts SendOpts, done func(Outcome)) uint64 {
	flow := e.newFlow(done)
	if e.rel != nil {
		e.startReliable(flow, from, env.SizeBytes(), opts, func() (*packet, simnet.Addr) {
			return &packet{kind: kindForward, flow: flow, target: env.HopID, env: env, ackTo: from}, env.Hint
		})
		return flow
	}
	p := &packet{kind: kindForward, flow: flow, target: env.HopID, env: env}
	e.dispatch(from, p, env.Hint)
	return flow
}

// WireBytes returns the byte slices a tunnel-protocol message actually
// exposes on the wire, for taps that scan frames for plaintext leaks (the
// no-plaintext-on-wire invariant). Payload packets carry only a size,
// ACKs only a hop count; neither exposes bytes. Non-protocol messages
// return nil.
func WireBytes(msg simnet.Message) [][]byte {
	p, ok := msg.(*packet)
	if !ok {
		return nil
	}
	switch p.kind {
	case kindForward:
		return [][]byte{p.env.Sealed}
	case kindReply:
		return [][]byte{p.renv.Onion, p.renv.Data}
	case kindStream:
		// Stream segments between tunnel exit (or direct sender) and the
		// destination owner expose their payload, like any overt transfer.
		return [][]byte{p.data}
	}
	return nil
}

// SendReply starts a reply-tunnel transfer from the responder's address.
func (e *NetEngine) SendReply(from simnet.Addr, renv *ReplyEnvelope, done func(Outcome)) uint64 {
	flow := e.newFlow(done)
	if e.rel != nil {
		e.startReliable(flow, from, renv.SizeBytes(), SendOpts{}, func() (*packet, simnet.Addr) {
			return &packet{kind: kindReply, flow: flow, target: renv.Target, renv: renv, ackTo: from}, renv.Hint
		})
		return flow
	}
	p := &packet{kind: kindReply, flow: flow, target: renv.Target, renv: renv}
	e.dispatch(from, p, renv.Hint)
	return flow
}
