package core

// Wire-format compatibility tests for the single-buffer layered builders.
//
// BuildForward and BuildReply were rewritten from nested seal-and-copy
// loops into one-buffer in-place assembly. The functions below are frozen
// copies of the original nested builders; the tests hold the rewrites to
// byte equality with them across tunnel lengths, payload sizes, and hint
// modes, so the onion format deployed anchors expect can never drift.
//
// The borrowed-buffer tests pin the ownership contract the in-place peel
// relies on: delivery engines must never mutate an initiator-held
// envelope, because the reliability layer re-sends the same envelope on
// retransmit.

import (
	"bytes"
	"testing"

	"tap/internal/crypt"
	"tap/internal/id"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/tha"
	"tap/internal/wire"
)

// referenceBuildForward is the pre-rewrite nested BuildForward.
func referenceBuildForward(t *Tunnel, hints []simnet.Addr, dest id.ID, payload []byte, stream *rng.Stream) (*Envelope, error) {
	l := t.Length()
	if hints == nil {
		hints = make([]simnet.Addr, l)
		for i := range hints {
			hints[i] = simnet.NoAddr
		}
	}
	w := wire.NewWriter(1 + id.Size + len(payload) + 8)
	w.Byte(layerExit)
	w.ID(dest)
	w.Blob(payload)
	sealed, err := crypt.Seal(t.Hops[l-1].Key, stream, w.Bytes())
	if err != nil {
		return nil, err
	}
	for i := l - 2; i >= 0; i-- {
		w := wire.NewWriter(1 + id.Size + 8 + len(sealed) + 8)
		w.Byte(layerRelay)
		w.ID(t.Hops[i+1].HopID)
		w.Int64(int64(hints[i+1]))
		w.Blob(sealed)
		sealed, err = crypt.Seal(t.Hops[i].Key, stream, w.Bytes())
		if err != nil {
			return nil, err
		}
	}
	return &Envelope{HopID: t.Hops[0].HopID, Hint: hints[0], Sealed: sealed}, nil
}

// referenceBuildReply is the pre-rewrite nested BuildReply.
func referenceBuildReply(t *Tunnel, hints []simnet.Addr, bid id.ID, stream *rng.Stream) (*ReplyTunnel, error) {
	l := t.Length()
	if hints == nil {
		hints = make([]simnet.Addr, l)
		for i := range hints {
			hints[i] = simnet.NoAddr
		}
	}
	layerBody := func(next id.ID, hint simnet.Addr, rest []byte) []byte {
		w := wire.NewWriter(id.Size + 8 + len(rest) + 8)
		w.ID(next)
		w.Int64(int64(hint))
		w.Blob(rest)
		return w.Bytes()
	}
	fake := make([]byte, FakeOnionSize)
	stream.Bytes(fake)
	sealed, err := crypt.Seal(t.Hops[l-1].Key, stream, layerBody(bid, simnet.NoAddr, fake))
	if err != nil {
		return nil, err
	}
	for i := l - 2; i >= 0; i-- {
		sealed, err = crypt.Seal(t.Hops[i].Key, stream, layerBody(t.Hops[i+1].HopID, hints[i+1], sealed))
		if err != nil {
			return nil, err
		}
	}
	return &ReplyTunnel{First: t.Hops[0].HopID, FirstHint: hints[0], Onion: sealed}, nil
}

// handTunnel builds a tunnel of length l with random hop secrets, without
// an overlay.
func handTunnel(t *testing.T, l int, s *rng.Stream) *Tunnel {
	t.Helper()
	hops := make([]tha.Secret, l)
	for i := range hops {
		var hopID id.ID
		s.Bytes(hopID[:])
		key, err := crypt.NewKey(s)
		if err != nil {
			t.Fatal(err)
		}
		hops[i] = tha.Secret{Anchor: tha.Anchor{HopID: hopID, Key: key}}
	}
	return &Tunnel{Hops: hops}
}

func TestBuildForwardMatchesReference(t *testing.T) {
	s := rng.New(81)
	for _, l := range []int{1, 2, 3, 5, 8} {
		tun := handTunnel(t, l, s)
		var dest id.ID
		s.Bytes(dest[:])
		for _, size := range []int{0, 1, 127, 128, 500, 20_000} {
			payload := make([]byte, size)
			s.Bytes(payload)
			hintSets := [][]simnet.Addr{nil, make([]simnet.Addr, l)}
			for i := range hintSets[1] {
				hintSets[1][i] = simnet.Addr(i * 7)
			}
			for hi, hints := range hintSets {
				seed := s.Uint64()
				want, err := referenceBuildForward(tun, hints, dest, payload, rng.New(seed))
				if err != nil {
					t.Fatal(err)
				}
				got, err := BuildForward(tun, hints, dest, payload, rng.New(seed))
				if err != nil {
					t.Fatal(err)
				}
				if got.HopID != want.HopID || got.Hint != want.Hint {
					t.Fatalf("l=%d size=%d hints=%d: envelope header differs", l, size, hi)
				}
				if !bytes.Equal(got.Sealed, want.Sealed) {
					t.Fatalf("l=%d size=%d hints=%d: single-buffer onion differs from nested reference", l, size, hi)
				}
			}
		}
	}
}

func TestBuildReplyMatchesReference(t *testing.T) {
	s := rng.New(82)
	for _, l := range []int{1, 2, 3, 5, 8} {
		tun := handTunnel(t, l, s)
		var bid id.ID
		s.Bytes(bid[:])
		hintSets := [][]simnet.Addr{nil, make([]simnet.Addr, l)}
		for i := range hintSets[1] {
			hintSets[1][i] = simnet.Addr(100 + i)
		}
		for hi, hints := range hintSets {
			seed := s.Uint64()
			want, err := referenceBuildReply(tun, hints, bid, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			got, err := BuildReply(tun, hints, bid, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			if got.First != want.First || got.FirstHint != want.FirstHint {
				t.Fatalf("l=%d hints=%d: reply header differs", l, hi)
			}
			if !bytes.Equal(got.Onion, want.Onion) {
				t.Fatalf("l=%d hints=%d: single-buffer reply onion differs from nested reference", l, hi)
			}
		}
	}
}

func TestOpenLayerWrappersLeaveInputIntact(t *testing.T) {
	s := rng.New(83)
	tun := handTunnel(t, 3, s)
	var dest id.ID
	s.Bytes(dest[:])
	env, err := BuildForward(tun, nil, dest, []byte("borrowed"), s)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]byte(nil), env.Sealed...)
	if _, err := OpenForwardLayer(tun.Hops[0].Anchor, env.Sealed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(env.Sealed, before) {
		t.Fatal("OpenForwardLayer mutated the sealed input")
	}

	rt, err := BuildReply(tun, nil, dest, s)
	if err != nil {
		t.Fatal(err)
	}
	beforeOnion := append([]byte(nil), rt.Onion...)
	if _, _, _, err := OpenReplyLayer(tun.Hops[0].Anchor, rt.Onion); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rt.Onion, beforeOnion) {
		t.Fatal("OpenReplyLayer mutated the onion input")
	}
}

// TestDeliverLeavesEnvelopeIntact pins the retransmit contract: the
// walker peels on its own copy, so delivering the same envelope twice
// works and the envelope bytes never change.
func TestDeliverLeavesEnvelopeIntact(t *testing.T) {
	s := newSys(t, 150, 3, 84)
	in := s.readyInitiator(t, "borrow", 30)
	tun, err := in.FormTunnel(4)
	if err != nil {
		t.Fatal(err)
	}
	dest := id.HashString("borrow-dest")
	env, err := BuildForward(tun, nil, dest, []byte("retransmit me"), s.root.Split("msg"))
	if err != nil {
		t.Fatal(err)
	}
	before := append([]byte(nil), env.Sealed...)
	for attempt := 0; attempt < 2; attempt++ {
		res, err := s.svc.DeliverForward(in.Node().Ref().Addr, env)
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if string(res.Payload) != "retransmit me" {
			t.Fatalf("attempt %d: payload %q", attempt, res.Payload)
		}
		if !bytes.Equal(env.Sealed, before) {
			t.Fatalf("attempt %d: DeliverForward mutated env.Sealed", attempt)
		}
	}

	bid := in.NewBid()
	rt, err := BuildReply(tun, nil, bid, s.root.Split("reply"))
	if err != nil {
		t.Fatal(err)
	}
	renv := &ReplyEnvelope{Target: rt.First, Hint: rt.FirstHint, Onion: rt.Onion, Data: []byte("reply data")}
	beforeOnion := append([]byte(nil), renv.Onion...)
	from := s.ov.RandomLive(s.root.Split("responder")).Ref().Addr
	for attempt := 0; attempt < 2; attempt++ {
		res, err := s.svc.DeliverReply(from, renv)
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if res.Target != bid {
			t.Fatalf("attempt %d: landed at %s, want bid", attempt, res.Target.Short())
		}
		if !bytes.Equal(renv.Onion, beforeOnion) {
			t.Fatalf("attempt %d: DeliverReply mutated renv.Onion", attempt)
		}
	}
}
