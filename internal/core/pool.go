package core

import (
	"errors"
	"time"

	"tap/internal/id"
	"tap/internal/rng"
	"tap/internal/simnet"
)

// TunnelPool keeps N disjoint tunnels per initiator alive under churn.
// A tunnel formed once and never revisited dies silently: the initiator
// only learns at the next send, after burning a full retransmit schedule.
// The pool closes that gap with an active lifecycle:
//
//   - Periodic end-to-end echo probes over each tunnel. A probe is a
//     small forward-tunnel message whose exit destination is a bid the
//     initiator's own node owns (the §4 reply-delivery condition), so the
//     echo coming home proves every hop decrypted and forwarded.
//   - Binary-search hop attribution on failure: probing prefix
//     sub-tunnels isolates the first hop that no longer serves, in
//     O(log l) probes instead of l.
//   - The culprit feeds the per-initiator Quarantine, which FormTunnel
//     consults, so replacement tunnels avoid the bad hop.
//   - Dead tunnels are torn down (anchors released for reuse, not
//     deleted) and rebuilt under jittered exponential backoff per slot
//     plus a global RateLimiter, so mass churn cannot trigger a
//     correlated rebuild storm.
//   - Hysteresis: a rebuilt tunnel is "recovering" until it passes
//     HealthyThreshold consecutive probes; it only then counts toward
//     the pool's healthy size.
//   - Graceful degradation: Send picks the healthiest slot and fails
//     over to the next on failure; when nothing is usable (e.g. the
//     initiator is partitioned) Send fails fast with ErrPoolDegraded
//     instead of hanging callers on retransmit schedules.
//
// The pool runs entirely on the simulation kernel and owns no goroutines;
// all state is single-threaded like the rest of the engine.
type TunnelPool struct {
	in  *Initiator
	eng *NetEngine
	cfg PoolConfig

	quar    *Quarantine
	limiter *RateLimiter
	stream  *rng.Stream
	slots   []*poolSlot

	started  bool
	stopped  bool
	degraded bool
	// consecRebuildFails counts rebuild cycles that failed to produce a
	// trusted tunnel (formation error, or death while recovering) since
	// the last promotion. Crossing DegradedAfter flips the pool degraded.
	consecRebuildFails int

	// OnStateChange, when non-nil, observes degraded-state transitions.
	OnStateChange func(degraded bool)

	Stats PoolStats
}

// PoolConfig tunes a TunnelPool. The zero value of every field gets a
// sensible default from withDefaults; see DESIGN.md §11 for why these
// particular constants.
type PoolConfig struct {
	// Size is the target number of healthy tunnels (default 3); Length
	// their hop count (default 3, the paper's default l).
	Size   int
	Length int
	// SpareAnchors keeps extra anchors deployed beyond Size*Length so a
	// rebuild can avoid quarantined anchors without a deployment round
	// trip. Default Length.
	SpareAnchors int

	// ProbeInterval is the per-slot echo cadence (default 2s), jittered
	// by ProbeJitterFrac (default 0.1) so pools across a network do not
	// synchronize. ProbeTimeout (default 5s) declares an unanswered
	// probe failed; ProbeAttempts (default 1) is the probe flow's
	// retransmit budget — probes are cheap and frequent, so they detect
	// rather than persist. SendAttempts (default 3) is the budget for
	// pool data sends: enough to ride out one transient loss, small
	// enough that failover to another tunnel is fast.
	ProbeInterval   simnet.Time
	ProbeJitterFrac float64
	ProbeTimeout    simnet.Time
	ProbeAttempts   int
	SendAttempts    int

	// FailThreshold consecutive probe failures declare a tunnel dead
	// (default 2: one failure can be loss, two in a row is a dead hop).
	// HealthyThreshold consecutive successes promote a recovering tunnel
	// (default 2: hysteresis so a flapping path cannot oscillate the
	// pool's health accounting).
	FailThreshold    int
	HealthyThreshold int

	// Rebuild backoff per slot: first retry after RebuildBackoffMin
	// (default 1s), multiplied by RebuildBackoffFactor (default 2) per
	// consecutive failure up to RebuildBackoffMax (default 8s), jittered
	// by RebuildJitterFrac (default 0.2).
	RebuildBackoffMin    simnet.Time
	RebuildBackoffMax    simnet.Time
	RebuildBackoffFactor float64
	RebuildJitterFrac    float64

	// Limiter is the global rebuild admission control, shared across
	// pools to cap the aggregate rebuild rate. Nil gets a private
	// limiter (0.2/s sustained, burst Size).
	Limiter *RateLimiter

	// DegradedAfter consecutive failed rebuild cycles flip the pool into
	// the degraded state (default 2). While degraded with FallbackLength
	// > 0, rebuilds form shorter tunnels of that length — trading some
	// anonymity margin for connectivity — until a full-length tunnel is
	// promoted again. FallbackLength 0 disables the fallback.
	DegradedAfter  int
	FallbackLength int

	// Quarantine tunes the hop scoreboard installed on the initiator.
	Quarantine QuarantineConfig

	// Stream roots the pool's jitter and probe nonces. Default: a
	// private split of the initiator's stream.
	Stream *rng.Stream

	// DisableRebuild and BypassAdmission are fault-injection seams in
	// the spirit of Service.HopFilter, planted by the simulation checker
	// to prove the pool invariants fire: the first stalls every rebuild
	// (dead slots stay empty), the second skips the backoff and the rate
	// limiter (rebuild storms). Never set them otherwise.
	DisableRebuild  bool
	BypassAdmission bool
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.Size == 0 {
		c.Size = 3
	}
	if c.Length == 0 {
		c.Length = 3
	}
	if c.SpareAnchors == 0 {
		c.SpareAnchors = c.Length
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeJitterFrac == 0 {
		c.ProbeJitterFrac = 0.1
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 5 * time.Second
	}
	if c.ProbeAttempts == 0 {
		c.ProbeAttempts = 1
	}
	if c.SendAttempts == 0 {
		c.SendAttempts = 3
	}
	if c.FailThreshold == 0 {
		c.FailThreshold = 2
	}
	if c.HealthyThreshold == 0 {
		c.HealthyThreshold = 2
	}
	if c.RebuildBackoffMin == 0 {
		c.RebuildBackoffMin = time.Second
	}
	if c.RebuildBackoffMax == 0 {
		c.RebuildBackoffMax = 8 * time.Second
	}
	if c.RebuildBackoffFactor == 0 {
		c.RebuildBackoffFactor = 2
	}
	if c.RebuildJitterFrac == 0 {
		c.RebuildJitterFrac = 0.2
	}
	if c.DegradedAfter == 0 {
		c.DegradedAfter = 2
	}
	return c
}

// PoolStats counts pool lifecycle activity.
type PoolStats struct {
	ProbesSent    uint64
	ProbesOK      uint64
	ProbesFailed  uint64
	ProbeTimeouts uint64

	SlotDeaths   uint64 // tunnels declared dead
	Attributions uint64 // deaths attributed to a specific hop

	Rebuilds        uint64 // rebuild attempts admitted (tunnel formed or tried)
	RebuildsDenied  uint64 // rebuilds refused by the rate limiter
	RebuildFailures uint64 // admitted rebuilds whose formation failed
	FallbackForms   uint64 // rebuilds that used the shorter fallback length

	Sends        uint64 // pool sends accepted
	SendFailures uint64 // individual tunnel attempts that failed
	Failovers    uint64 // sends retried over another tunnel
	FastFails    uint64 // sends rejected immediately (degraded)

	DegradedEnters uint64
	DegradedExits  uint64

	Repairs    uint64      // slots restored to healthy after a death
	RepairTime simnet.Time // total dead-to-healthy time across repairs
}

// slotHealth is a slot's lifecycle position.
type slotHealth int

const (
	slotEmpty      slotHealth = iota // no tunnel; awaiting rebuild
	slotRecovering                   // tunnel formed, not yet trusted
	slotHealthy                      // passing probes
	slotDying                        // declared dead; attribution running
)

// poolSlot is one of the pool's tunnel positions.
type poolSlot struct {
	idx     int
	tunnel  *Tunnel
	cache   *HintCache
	health  slotHealth
	probing bool

	consecOK   int
	consecFail int

	// deadSince anchors the time-to-repair measurement: set at the first
	// death, cleared at the next promotion.
	deadSince    simnet.Time
	hasDeadSince bool

	// backoff is the slot's current rebuild delay (grows on failed
	// rebuild cycles); nextRebuildAt gates the next attempt.
	backoff       simnet.Time
	nextRebuildAt simnet.Time
}

// Pool errors.
var (
	// ErrPoolDegraded means no tunnel is currently usable; the send was
	// rejected immediately rather than queued behind a doomed
	// retransmit schedule. Callers back off and retry; the pool's
	// probes and rebuilds keep working toward recovery.
	ErrPoolDegraded = errors.New("core: tunnel pool degraded: no usable tunnel")
	// ErrPoolStopped means the pool was shut down.
	ErrPoolStopped = errors.New("core: tunnel pool stopped")
)

// NewTunnelPool builds a pool of cfg.Size disjoint tunnels for the
// initiator, deploying any missing anchors, and installs the hop
// quarantine on the initiator. Call Start to begin the probe loop.
func NewTunnelPool(in *Initiator, eng *NetEngine, cfg PoolConfig) (*TunnelPool, error) {
	cfg = cfg.withDefaults()
	p := &TunnelPool{
		in:      in,
		eng:     eng,
		cfg:     cfg,
		limiter: cfg.Limiter,
		stream:  cfg.Stream,
	}
	if p.stream == nil {
		p.stream = in.stream.Split("tunnel-pool")
	}
	if p.limiter == nil {
		p.limiter = NewRateLimiter(0.2, float64(cfg.Size))
	}
	p.quar = NewQuarantine(cfg.Quarantine, eng.net.Now)
	in.Quarantine = p.quar

	if err := p.ensureAnchors(); err != nil {
		return nil, err
	}
	tunnels, err := in.FormDisjointTunnels(cfg.Size, cfg.Length)
	if err != nil {
		return nil, err
	}
	for i, t := range tunnels {
		s := &poolSlot{idx: i, tunnel: t, cache: NewHintCache(), health: slotHealthy}
		// Best effort: an unresolvable hop just means DHT routing for it.
		_ = s.cache.Refresh(in.svc, t)
		p.slots = append(p.slots, s)
	}
	return p, nil
}

// Start begins the periodic probe/rebuild loop and subscribes to the
// network's address up/down events so a heal or restart triggers prompt
// re-probing instead of waiting out backoff timers.
func (p *TunnelPool) Start() {
	if p.started {
		return
	}
	p.started = true
	p.eng.net.WatchAddrs(func(_ simnet.Addr, up bool) {
		if up && !p.stopped {
			p.onAddrUp()
		}
	})
	p.scheduleTick()
}

// Stop halts the probe loop. In-flight probes resolve as no-ops; pending
// tick and timeout timers drain without rescheduling, so a simulation
// kernel reaches quiescence.
func (p *TunnelPool) Stop() { p.stopped = true }

// now reads the simulated clock.
func (p *TunnelPool) now() simnet.Time { return p.eng.net.Now() }

// jittered spreads d by ±frac.
func (p *TunnelPool) jittered(d simnet.Time, frac float64) simnet.Time {
	if frac <= 0 || d <= 0 {
		return d
	}
	return simnet.Time(float64(d) * (1 + frac*(2*p.stream.Float64()-1)))
}

func (p *TunnelPool) scheduleTick() {
	p.eng.net.Schedule(p.jittered(p.cfg.ProbeInterval, p.cfg.ProbeJitterFrac), func() {
		if p.stopped {
			return
		}
		p.tick()
		p.scheduleTick()
	})
}

// tick is one lifecycle round: probe every live slot, fill empty ones.
func (p *TunnelPool) tick() {
	p.ProbeRound()
	p.tryRebuild()
	p.updateState()
}

// ProbeRound fires an echo probe on every slot that holds a tunnel and is
// not already probing. Exposed for the probe-cycle benchmark and tests;
// the Start loop calls it every ProbeInterval.
func (p *TunnelPool) ProbeRound() {
	for _, s := range p.slots {
		if s.tunnel != nil && s.health != slotDying && !s.probing {
			p.probeSlot(s)
		}
	}
}

// probeSlot sends one end-to-end echo over the slot's tunnel.
func (p *TunnelPool) probeSlot(s *poolSlot) {
	s.probing = true
	p.Stats.ProbesSent++
	p.probeTunnel(s.tunnel, s.cache, func(ok bool) {
		s.probing = false
		if p.stopped {
			return
		}
		p.onProbeResult(s, ok)
	})
}

// probeTunnel builds and sends an echo probe over t, invoking cb exactly
// once with the verdict: either the flow's outcome or, if nothing came
// home within ProbeTimeout, failure. The probe destination is a bid owned
// by the initiator's own node, so delivery loops the full tunnel and
// comes home — the same §4 mechanism reply tunnels use.
func (p *TunnelPool) probeTunnel(t *Tunnel, cache *HintCache, cb func(ok bool)) {
	var nonce [16]byte
	p.stream.Bytes(nonce[:])
	env, err := BuildForwardWithCache(t, cache, p.in.NewBid(), nonce[:], p.stream)
	if err != nil {
		cb(false)
		return
	}
	fired := false
	once := func(ok bool) {
		if fired {
			return
		}
		fired = true
		cb(ok)
	}
	opts := SendOpts{MaxAttempts: p.cfg.ProbeAttempts, Cache: cache, Hops: t.HopIDs()}
	p.eng.SendForwardOpt(p.in.node.Ref().Addr, env, opts, func(o Outcome) {
		once(o.Delivered)
	})
	p.eng.net.Schedule(p.cfg.ProbeTimeout, func() {
		if !fired {
			p.Stats.ProbeTimeouts++
		}
		once(false)
	})
}

// onProbeResult applies one probe verdict to a slot.
func (p *TunnelPool) onProbeResult(s *poolSlot, ok bool) {
	if s.tunnel == nil || s.health == slotDying {
		return // the slot moved on while the probe was in flight
	}
	if ok {
		p.Stats.ProbesOK++
		s.consecFail = 0
		s.consecOK++
		// Every hop served: clear quarantine strikes, close half-open
		// breakers.
		for _, h := range s.tunnel.Hops {
			p.quar.ReportSuccess(h.HopID)
		}
		if s.health == slotRecovering && s.consecOK >= p.cfg.HealthyThreshold {
			p.promote(s)
		}
	} else {
		p.Stats.ProbesFailed++
		s.consecOK = 0
		s.consecFail++
		if s.consecFail >= p.cfg.FailThreshold {
			p.declareDead(s)
		}
	}
	p.updateState()
}

// promote marks a recovering slot healthy and settles its repair timing.
func (p *TunnelPool) promote(s *poolSlot) {
	s.health = slotHealthy
	s.backoff = 0
	p.consecRebuildFails = 0
	if s.hasDeadSince {
		p.Stats.Repairs++
		p.Stats.RepairTime += p.now() - s.deadSince
		s.hasDeadSince = false
	}
}

// declareDead starts a dead slot's attribution-then-teardown sequence.
// Attribution must finish before teardown: the prefix probes need the
// tunnel's anchors still deployed.
func (p *TunnelPool) declareDead(s *poolSlot) {
	p.Stats.SlotDeaths++
	if !s.hasDeadSince {
		s.deadSince = p.now()
		s.hasDeadSince = true
	}
	if s.health == slotRecovering {
		// A rebuilt tunnel died before earning trust: that rebuild cycle
		// failed, so the slot's backoff grows.
		p.noteRebuildFailure(s)
	}
	s.health = slotDying
	t := s.tunnel
	p.attribute(t, s.cache, func(culprit id.ID, found bool) {
		if found {
			p.Stats.Attributions++
			if p.quar.ReportFailure(culprit) {
				// Struck out: the anchor is retired for good. The tunnel
				// must be released first so DropAnchor sees it unused.
				p.teardown(s)
				p.in.DropAnchor(culprit)
				return
			}
		}
		p.teardown(s)
	})
}

// attribute binary-searches for the first hop at which the tunnel stops
// echoing: probe the prefix sub-tunnel of m hops (its exit routes the
// echo home from hop m-1); if the echo returns, the fault is deeper.
// Invariant: the lo-prefix works, the hi-prefix fails; the culprit is
// hop hi-1. O(log l) probes against l for a linear scan.
func (p *TunnelPool) attribute(t *Tunnel, cache *HintCache, done func(culprit id.ID, found bool)) {
	l := len(t.Hops)
	if l == 0 {
		done(id.ID{}, false)
		return
	}
	if l == 1 {
		done(t.Hops[0].HopID, true)
		return
	}
	lo, hi := 0, l
	var step func()
	step = func() {
		if p.stopped {
			done(id.ID{}, false)
			return
		}
		if hi-lo <= 1 {
			done(t.Hops[hi-1].HopID, true)
			return
		}
		mid := (lo + hi) / 2
		p.probeTunnel(t.prefix(mid), cache, func(ok bool) {
			if ok {
				lo = mid
			} else {
				hi = mid
			}
			step()
		})
	}
	step()
}

// prefix returns the sub-tunnel of t's first m hops, sharing the parent's
// key schedules where already derived (attribution probes pay no extra
// AES setup after the first full-tunnel message).
func (t *Tunnel) prefix(m int) *Tunnel {
	sub := &Tunnel{Hops: t.Hops[:m]}
	if len(t.sealers) == len(t.Hops) {
		sub.sealers = t.sealers[:m]
	}
	return sub
}

// teardown releases a dead slot's tunnel. Anchors are released back to
// the initiator's pool, not deleted: usually one hop is bad (quarantined
// above) and the rest are reusable by the rebuild.
func (p *TunnelPool) teardown(s *poolSlot) {
	if s.tunnel != nil {
		p.in.Release(s.tunnel)
	}
	s.tunnel = nil
	s.cache = nil
	s.health = slotEmpty
	s.consecOK, s.consecFail = 0, 0
	s.probing = false
	s.nextRebuildAt = p.now() + p.jittered(s.backoff, p.cfg.RebuildJitterFrac)
	p.updateState()
}

// noteRebuildFailure records a failed rebuild cycle against a slot:
// backoff grows exponentially and the pool-wide failure streak advances.
func (p *TunnelPool) noteRebuildFailure(s *poolSlot) {
	p.consecRebuildFails++
	if s.backoff == 0 {
		s.backoff = p.cfg.RebuildBackoffMin
	} else {
		s.backoff = simnet.Time(float64(s.backoff) * p.cfg.RebuildBackoffFactor)
		if s.backoff > p.cfg.RebuildBackoffMax {
			s.backoff = p.cfg.RebuildBackoffMax
		}
	}
}

// tryRebuild fills empty slots: at most one admitted rebuild per tick,
// gated by the slot's backoff and the global rate limiter. The
// BypassAdmission seam skips all three gates — the planted bug the
// rebuild-rate invariant exists to catch.
func (p *TunnelPool) tryRebuild() {
	if p.cfg.DisableRebuild {
		return
	}
	now := p.now()
	for _, s := range p.slots {
		if s.health != slotEmpty {
			continue
		}
		if !p.cfg.BypassAdmission {
			if now < s.nextRebuildAt {
				continue
			}
			if !p.limiter.Allow(now) {
				p.Stats.RebuildsDenied++
				// Bucket empty: retry when tokens have refilled; no other
				// slot can be admitted this tick either.
				s.nextRebuildAt = now + p.cfg.ProbeInterval
				return
			}
		}
		p.rebuild(s)
		if !p.cfg.BypassAdmission {
			return
		}
	}
}

// rebuild forms a replacement tunnel in an empty slot.
func (p *TunnelPool) rebuild(s *poolSlot) {
	p.Stats.Rebuilds++
	length := p.cfg.Length
	if p.degraded && p.cfg.FallbackLength > 0 && p.cfg.FallbackLength < length {
		// Degraded fallback: a shorter tunnel has fewer hops to lose and
		// fewer anchors to find — connectivity over anonymity margin
		// until the pool is healthy again.
		length = p.cfg.FallbackLength
		p.Stats.FallbackForms++
	}
	if err := p.ensureAnchors(); err != nil {
		p.failRebuild(s)
		return
	}
	t, err := p.in.FormTunnel(length)
	if err != nil {
		p.failRebuild(s)
		return
	}
	s.tunnel = t
	s.cache = NewHintCache()
	_ = s.cache.Refresh(p.in.svc, t)
	s.health = slotRecovering
	s.consecOK, s.consecFail = 0, 0
	// Probe immediately: a rebuilt tunnel should earn trust (or fail)
	// without waiting out a tick.
	p.probeSlot(s)
}

// failRebuild books a formation failure and re-arms the slot's backoff.
func (p *TunnelPool) failRebuild(s *poolSlot) {
	p.Stats.RebuildFailures++
	p.noteRebuildFailure(s)
	s.nextRebuildAt = p.now() + p.jittered(maxTime(s.backoff, p.cfg.RebuildBackoffMin), p.cfg.RebuildJitterFrac)
	p.updateState()
}

func maxTime(a, b simnet.Time) simnet.Time {
	if a > b {
		return a
	}
	return b
}

// ensureAnchors tops the initiator's pool up to Size*Length+SpareAnchors
// usable (non-quarantined) anchors.
func (p *TunnelPool) ensureAnchors() error {
	target := p.cfg.Size*p.cfg.Length + p.cfg.SpareAnchors
	usable := 0
	for _, s := range p.in.Pool() {
		if !p.quarBlocked(s.HopID) {
			usable++
		}
	}
	if usable >= target {
		return nil
	}
	return p.in.DeployDirect(target - usable)
}

func (p *TunnelPool) quarBlocked(h id.ID) bool {
	return p.quar != nil && p.quar.Blocked(h)
}

// onAddrUp reacts to any address coming back up (a crash window closing,
// a partition healing behind it): collapse rebuild backoffs and re-probe
// unhealthy slots now, so repair time tracks the heal rather than the
// worst-case timer.
func (p *TunnelPool) onAddrUp() {
	now := p.now()
	for _, s := range p.slots {
		if s.nextRebuildAt > now {
			s.nextRebuildAt = now
		}
		if s.tunnel != nil && s.health == slotRecovering && !s.probing {
			p.probeSlot(s)
		}
	}
}

// updateState recomputes the degraded flag.
func (p *TunnelPool) updateState() {
	usable := 0
	for _, s := range p.slots {
		if s.health == slotHealthy || s.health == slotRecovering {
			usable++
		}
	}
	deg := usable == 0 || p.consecRebuildFails >= p.cfg.DegradedAfter
	if deg == p.degraded {
		return
	}
	p.degraded = deg
	if deg {
		p.Stats.DegradedEnters++
	} else {
		p.Stats.DegradedExits++
	}
	if p.OnStateChange != nil {
		p.OnStateChange(deg)
	}
}

// Send delivers payload to the owner of dest over the healthiest tunnel,
// failing over to the next-best on failure. It returns ErrPoolDegraded
// immediately when no tunnel is usable — the graceful-degradation
// contract: a partitioned initiator learns in O(1), not after
// MaxAttempts of backoff. done (optional) receives the final outcome.
func (p *TunnelPool) Send(dest id.ID, payload []byte, done func(Outcome)) error {
	if p.stopped {
		return ErrPoolStopped
	}
	order := p.rankedUsable()
	if len(order) == 0 || (p.degraded && order[0].health != slotHealthy) {
		// Nothing usable — or the pool is degraded and the best on offer
		// is an unproven recovering tunnel, which repeated rebuild
		// failures say will die too. Reject now rather than burn a
		// retransmit schedule.
		p.Stats.FastFails++
		return ErrPoolDegraded
	}
	p.Stats.Sends++
	var try func(i int, prev Outcome)
	try = func(i int, prev Outcome) {
		if i >= len(order) {
			if done != nil {
				done(prev)
			}
			return
		}
		s := order[i]
		if s.tunnel == nil || s.health == slotDying {
			try(i+1, prev) // the slot died since ranking
			return
		}
		env, err := BuildForwardWithCache(s.tunnel, s.cache, dest, payload, p.stream)
		if err != nil {
			try(i+1, prev)
			return
		}
		opts := SendOpts{MaxAttempts: p.cfg.SendAttempts, Cache: s.cache, Hops: s.tunnel.HopIDs()}
		p.eng.SendForwardOpt(p.in.node.Ref().Addr, env, opts, func(o Outcome) {
			if o.Delivered {
				if done != nil {
					done(o)
				}
				return
			}
			p.Stats.SendFailures++
			p.noteSendFailure(s)
			if i+1 < len(order) {
				p.Stats.Failovers++
			}
			try(i+1, o)
		})
	}
	try(0, Outcome{})
	return nil
}

// noteSendFailure feeds a failed data send into the slot's health
// accounting — a failed send is as strong a death signal as a failed
// probe, and fresher.
func (p *TunnelPool) noteSendFailure(s *poolSlot) {
	if p.stopped || s.tunnel == nil || s.health == slotDying {
		return
	}
	s.consecOK = 0
	s.consecFail++
	if s.consecFail >= p.cfg.FailThreshold {
		p.declareDead(s)
	}
	p.updateState()
}

// rankedUsable orders the usable slots best-first: healthy before
// recovering, longer success streaks first, slot order as tiebreak (a
// deterministic ranking keeps simulations replayable).
func (p *TunnelPool) rankedUsable() []*poolSlot {
	var out []*poolSlot
	for _, s := range p.slots {
		if s.health == slotHealthy || s.health == slotRecovering {
			out = append(out, s)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && poolRankLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func poolRankLess(a, b *poolSlot) bool {
	if (a.health == slotHealthy) != (b.health == slotHealthy) {
		return a.health == slotHealthy
	}
	if a.consecOK != b.consecOK {
		return a.consecOK > b.consecOK
	}
	return a.idx < b.idx
}

// --- introspection ----------------------------------------------------------

// TargetSize returns the configured pool size.
func (p *TunnelPool) TargetSize() int { return p.cfg.Size }

// HealthyCount returns the number of slots currently trusted healthy.
func (p *TunnelPool) HealthyCount() int {
	n := 0
	for _, s := range p.slots {
		if s.health == slotHealthy {
			n++
		}
	}
	return n
}

// UsableCount returns healthy plus recovering slots.
func (p *TunnelPool) UsableCount() int {
	n := 0
	for _, s := range p.slots {
		if s.health == slotHealthy || s.health == slotRecovering {
			n++
		}
	}
	return n
}

// Degraded reports the pool's degraded flag.
func (p *TunnelPool) Degraded() bool { return p.degraded }

// Quarantine returns the hop scoreboard installed on the initiator.
func (p *TunnelPool) Quarantine() *Quarantine { return p.quar }

// Limiter returns the rebuild admission limiter (shared or private).
func (p *TunnelPool) Limiter() *RateLimiter { return p.limiter }

// MeanRepairTime returns the average dead-to-healthy repair time, or 0
// when no repair has completed.
func (p *TunnelPool) MeanRepairTime() simnet.Time {
	if p.Stats.Repairs == 0 {
		return 0
	}
	return p.Stats.RepairTime / simnet.Time(p.Stats.Repairs)
}
