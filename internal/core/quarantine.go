package core

import (
	"time"

	"tap/internal/id"
	"tap/internal/simnet"
)

// QuarantineConfig tunes the per-initiator hop quarantine scoreboard.
type QuarantineConfig struct {
	// Threshold is the number of attributed failures that open an
	// anchor's circuit breaker. Default 2: one failure can be collateral
	// (an imperfect attribution during churn), two is a pattern.
	Threshold int
	// BaseOpen is the first open period; each re-open after a failed
	// half-open trial doubles it, up to MaxOpen. Defaults 30s / 5m.
	BaseOpen simnet.Time
	MaxOpen  simnet.Time
	// StrikeOut retires an anchor for good after this many opens (0 =
	// never). A hop that keeps failing its half-open trials sits on a
	// node that is down, overloaded, or hostile; past this point the
	// initiator deletes the anchor rather than keep paying trial probes.
	// Default 3.
	StrikeOut int
}

func (c QuarantineConfig) withDefaults() QuarantineConfig {
	if c.Threshold == 0 {
		c.Threshold = 2
	}
	if c.BaseOpen == 0 {
		c.BaseOpen = 30 * time.Second
	}
	if c.MaxOpen == 0 {
		c.MaxOpen = 5 * time.Minute
	}
	if c.StrikeOut == 0 {
		c.StrikeOut = 3
	}
	return c
}

// Quarantine is a per-initiator circuit breaker over hop anchors. Hops
// that probes attribute failures to are quarantined (their breaker opens)
// and excluded from tunnel formation; after the open period expires the
// breaker is half-open — the anchor may be used again, and the next
// reported outcome either closes the breaker (success) or re-opens it for
// twice as long (failure). This is the scoreboard FormTunnel and
// FormDisjointTunnels consult, so a flapping or hostile hop node stops
// attracting fresh tunnels without being written off forever.
type Quarantine struct {
	cfg QuarantineConfig
	now func() simnet.Time
	m   map[id.ID]*qEntry

	// Stats.
	Opens   uint64 // breakers opened (first time)
	Reopens uint64 // failed half-open trials
	Closes  uint64 // successful half-open trials
	Strikes uint64 // anchors that struck out
}

// qEntry is one anchor's breaker state.
type qEntry struct {
	fails     int         // consecutive failures while closed
	opens     int         // times this breaker has opened
	openDur   simnet.Time // current open period
	openUntil simnet.Time
	open      bool
}

// NewQuarantine builds a quarantine on the given clock.
func NewQuarantine(cfg QuarantineConfig, now func() simnet.Time) *Quarantine {
	return &Quarantine{cfg: cfg.withDefaults(), now: now, m: make(map[id.ID]*qEntry)}
}

// Blocked reports whether hop formation should avoid this anchor right
// now. An expired open period reads as not blocked: that is the half-open
// trial admission.
func (q *Quarantine) Blocked(h id.ID) bool {
	e := q.m[h]
	return e != nil && e.open && q.now() < e.openUntil
}

// BlockedCount returns the number of currently blocked anchors.
func (q *Quarantine) BlockedCount() int {
	n := 0
	now := q.now()
	for _, e := range q.m {
		if e.open && now < e.openUntil {
			n++
		}
	}
	return n
}

// ReportFailure records an attributed failure against an anchor and
// reports whether it has struck out (the caller should retire it).
func (q *Quarantine) ReportFailure(h id.ID) (strikeOut bool) {
	e := q.m[h]
	if e == nil {
		e = &qEntry{}
		q.m[h] = e
	}
	switch {
	case e.open && q.now() >= e.openUntil:
		// Failed its half-open trial: re-open for twice as long.
		e.openDur *= 2
		if e.openDur > q.cfg.MaxOpen {
			e.openDur = q.cfg.MaxOpen
		}
		e.openUntil = q.now() + e.openDur
		e.opens++
		q.Reopens++
	case e.open:
		// Already open; an extra report (e.g. a second tunnel sharing the
		// hop) extends nothing — the breaker is doing its job.
	default:
		e.fails++
		if e.fails >= q.cfg.Threshold {
			e.fails = 0
			e.open = true
			if e.openDur == 0 {
				e.openDur = q.cfg.BaseOpen
			}
			e.openUntil = q.now() + e.openDur
			e.opens++
			q.Opens++
		}
	}
	if q.cfg.StrikeOut > 0 && e.opens >= q.cfg.StrikeOut {
		q.Strikes++
		delete(q.m, h) // the caller retires the anchor; no state to keep
		return true
	}
	return false
}

// ReportSuccess records that a hop served correctly. A half-open anchor
// closes its breaker; a closed anchor's failure streak resets.
func (q *Quarantine) ReportSuccess(h id.ID) {
	e := q.m[h]
	if e == nil {
		return
	}
	if e.open && q.now() >= e.openUntil {
		q.Closes++
		delete(q.m, h)
		return
	}
	if !e.open {
		e.fails = 0
	}
}

// Forget discards all state for an anchor (e.g. it was deleted).
func (q *Quarantine) Forget(h id.ID) { delete(q.m, h) }

// RateLimiter is a deterministic token bucket on the simulated clock: the
// pool's global rebuild admission control. Mass churn kills many tunnels
// at once; without admission control every pool would rebuild immediately
// and the coordinated storm of anchor deployments and probe traffic is
// both a load spike and a correlatable signal for an intersection
// adversary. Share one limiter across pools to cap the aggregate rate.
type RateLimiter struct {
	// Rate is the sustained admissions per second; Burst the bucket
	// capacity (and initial fill).
	Rate  float64
	Burst float64

	tokens float64
	last   simnet.Time
	primed bool

	Admitted uint64
	Denied   uint64
}

// NewRateLimiter returns a full bucket.
func NewRateLimiter(rate, burst float64) *RateLimiter {
	return &RateLimiter{Rate: rate, Burst: burst}
}

// Allow consumes one token if available. now must be monotone across
// calls (the simulated clock is).
func (rl *RateLimiter) Allow(now simnet.Time) bool {
	if !rl.primed {
		rl.tokens = rl.Burst
		rl.last = now
		rl.primed = true
	}
	rl.tokens += rl.Rate * (now - rl.last).Seconds()
	if rl.tokens > rl.Burst {
		rl.tokens = rl.Burst
	}
	rl.last = now
	if rl.tokens >= 1 {
		rl.tokens--
		rl.Admitted++
		return true
	}
	rl.Denied++
	return false
}

// Bound returns the most admissions the bucket could have granted by
// elapsed time now: the initial burst plus refill. The dst rebuild-rate
// invariant checks admission counts against it.
func (rl *RateLimiter) Bound(now simnet.Time) float64 {
	return rl.Burst + rl.Rate*now.Seconds()
}
