package core

import (
	"testing"

	"tap/internal/id"
	"tap/internal/rng"
)

// FuzzOpenForwardLayer feeds arbitrary ciphertext to a hop's layer opener:
// it must never panic and must reject everything that was not produced by
// BuildForward under the right key.
func FuzzOpenForwardLayer(f *testing.F) {
	stream := rng.New(1)
	tun := &Tunnel{Hops: makeHops(stream, 2)}
	env, err := BuildForward(tun, nil, id.ID{}, []byte("seed"), stream)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(env.Sealed)
	f.Add([]byte{})
	f.Add(make([]byte, 64))

	anchor := tun.Hops[0].Anchor
	valid := string(env.Sealed)
	f.Fuzz(func(t *testing.T, data []byte) {
		layer, err := OpenForwardLayer(anchor, data)
		if err != nil {
			return
		}
		// Only the genuine ciphertext may decode successfully.
		if string(data) != valid {
			t.Fatalf("forged ciphertext accepted: %+v", layer)
		}
	})
}

// FuzzOpenReplyLayer is the reply-side twin.
func FuzzOpenReplyLayer(f *testing.F) {
	stream := rng.New(2)
	tun := &Tunnel{Hops: makeHops(stream, 2)}
	rt, err := BuildReply(tun, nil, id.ID{}, stream)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rt.Onion)
	f.Add([]byte{})
	anchor := tun.Hops[0].Anchor
	valid := string(rt.Onion)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _, err := OpenReplyLayer(anchor, data)
		if err == nil && string(data) != valid {
			t.Fatalf("forged reply onion accepted")
		}
	})
}

// FuzzDecodeReplyTunnel: arbitrary bytes must either parse consistently
// or fail cleanly.
func FuzzDecodeReplyTunnel(f *testing.F) {
	stream := rng.New(3)
	tun := &Tunnel{Hops: makeHops(stream, 3)}
	rt, err := BuildReply(tun, nil, id.ID{}, stream)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rt.Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeReplyTunnel(data)
		if err != nil {
			return
		}
		// Whatever parsed must re-encode to an equivalent structure.
		again, err := DecodeReplyTunnel(got.Encode())
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if again.First != got.First || again.FirstHint != got.FirstHint || len(again.Onion) != len(got.Onion) {
			t.Fatalf("decode/encode not idempotent")
		}
	})
}
