package core

import (
	"testing"

	"tap/internal/id"
	"tap/internal/simnet"
)

func TestPadToMatch(t *testing.T) {
	e := &Envelope{HopID: id.HashString("h"), Hint: simnet.NoAddr, Sealed: make([]byte, 100)}
	base := e.SizeBytes()
	e.PadToMatch(base + 40)
	if e.SizeBytes() != base+40 {
		t.Fatalf("padded size %d, want %d", e.SizeBytes(), base+40)
	}
	// Smaller target: no negative padding.
	e.PadToMatch(base - 10)
	if e.Pad != 0 || e.SizeBytes() != base {
		t.Fatalf("negative padding applied")
	}
}

func TestNetEnvelopeSizeConstantAcrossHops(t *testing.T) {
	// Tap the wire: with link padding, every forward-envelope
	// transmission of a flow has identical size, so an observer cannot
	// read tunnel position off message length.
	ns := newNetSys(t, 300, 3, 71)
	in := ns.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(5)
	if err != nil {
		t.Fatal(err)
	}
	var envSizes []int
	ns.net.SendHook = func(_, _ simnet.Addr, msg simnet.Message) {
		if p, ok := msg.(*packet); ok && p.kind == kindForward {
			envSizes = append(envSizes, p.SizeBytes())
		}
	}
	env, err := BuildForward(tun, nil, id.HashString("d"), make([]byte, 10_000), ns.root.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	done := false
	ns.eng.SendForward(in.Node().Ref().Addr, env, func(o Outcome) { done = o.Delivered })
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatalf("flow failed")
	}
	if len(envSizes) < 5 {
		t.Fatalf("observed only %d envelope transmissions", len(envSizes))
	}
	for i, s := range envSizes {
		if s != envSizes[0] {
			t.Fatalf("envelope size varies on the wire: tx %d is %d bytes, first was %d",
				i, s, envSizes[0])
		}
	}
}
