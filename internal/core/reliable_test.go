package core

import (
	"strings"
	"testing"
	"time"

	"tap/internal/id"
	"tap/internal/simnet"
)

func TestNetFinishIgnoresDuplicateLatePackets(t *testing.T) {
	// Regression: a flow whose callback already fired could keep bumping
	// FailFlows on duplicate/late packet deaths.
	ns := newNetSys(t, 100, 3, 21)
	fired := 0
	p := &packet{flow: ns.eng.newFlow(func(Outcome) { fired++ })}
	ns.eng.finish(0, p, false, "first death")
	ns.eng.finish(0, p, false, "late duplicate")
	ns.eng.finish(0, p, true, "")
	if fired != 1 {
		t.Fatalf("callback fired %d times", fired)
	}
	if ns.eng.FailFlows != 1 {
		t.Fatalf("FailFlows = %d, want 1", ns.eng.FailFlows)
	}
}

func TestNetReliableOvertUnderLoss(t *testing.T) {
	ns := newNetSys(t, 200, 3, 22)
	ns.net.InstallFaults(&simnet.FaultPlan{Seed: 5, LossRate: 0.2})
	ns.eng.EnableReliability(Reliability{MaxAttempts: 12})
	from := ns.ov.RandomLive(ns.root.Split("src"))

	const flows = 10
	outs := make([]Outcome, flows)
	got := make([]bool, flows)
	for i := 0; i < flows; i++ {
		i := i
		var dest id.ID
		ns.root.Bytes(dest[:])
		ns.eng.SendOvert(from.Ref().Addr, dest, 20_000, func(o Outcome) { outs[i] = o; got[i] = true })
	}
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	retried := false
	for i := range outs {
		if !got[i] {
			t.Fatalf("flow %d vanished without an outcome", i)
		}
		if !outs[i].Delivered {
			t.Fatalf("flow %d failed under 20%% loss with retransmission: %+v", i, outs[i])
		}
		if outs[i].Attempts > 1 {
			retried = true
			if outs[i].Backoff <= 0 {
				t.Fatalf("flow %d retried but reports no backoff: %+v", i, outs[i])
			}
		}
	}
	if !retried {
		t.Fatalf("20%% loss over %d flows produced no retransmissions (Retransmits=%d)", flows, ns.eng.Retransmits)
	}
	if ns.eng.AcksRecv == 0 || ns.eng.AcksSent < ns.eng.AcksRecv {
		t.Fatalf("ack accounting: sent=%d recv=%d", ns.eng.AcksSent, ns.eng.AcksRecv)
	}
}

func TestNetReliableCrashFailoverInvalidatesHint(t *testing.T) {
	// The §5 optimized first hop is hinted straight at its current hop
	// node; that node crashes while the first copy is on the wire. The
	// retransmission must observe the dead hint, invalidate it, and
	// re-resolve the hop through the DHT — landing on the THA replica
	// that took the anchor over.
	ns := newNetSys(t, 300, 3, 23)
	in := ns.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(4)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewHintCache()
	if err := cache.Refresh(ns.svc, tun); err != nil {
		t.Fatal(err)
	}
	victim := cache.Get(tun.Hops[0].HopID)
	origin := in.Node().Ref().Addr
	if victim == origin {
		t.Skip("first hop held by the initiator itself at this seed")
	}
	ns.net.InstallFaults(&simnet.FaultPlan{
		Seed:    1,
		Crashes: []simnet.CrashWindow{{Addr: victim, At: time.Millisecond}},
		OnCrash: func(a simnet.Addr) {
			// The overlay notices the crash: THA replicas migrate, so the
			// hop anchor fails over to its replica holder.
			_ = ns.ov.Fail(a)
		},
	})
	ns.eng.EnableReliability(Reliability{})
	env, err := BuildForwardWithCache(tun, cache, id.HashString("d"), make([]byte, 1000), ns.root.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	var out Outcome
	gotOut := false
	ns.eng.SendForward(origin, env, func(o Outcome) { out = o; gotOut = true })
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if !gotOut || !out.Delivered {
		t.Fatalf("flow did not survive first-hop crash: %+v", out)
	}
	if out.Attempts < 2 {
		t.Fatalf("first copy was headed into the crash window but Attempts=%d", out.Attempts)
	}
	if ns.eng.StaleHints == 0 {
		t.Fatalf("crashed hint was never invalidated")
	}
	if ns.eng.hintStale(tun.Hops[0].HopID, victim) {
		// expected: the (hop, victim) pair is the stale entry
	} else {
		t.Fatalf("stale set does not contain the crashed first-hop hint")
	}
}

func TestNetReliableFailsCleanlyWhenTunnelDead(t *testing.T) {
	ns := newNetSys(t, 300, 3, 24)
	in := ns.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	origin := in.Node().Ref().Addr
	ns.mgr.BeginBatch()
	for _, addr := range ns.dir.ReplicaAddrs(tun.Hops[1].HopID) {
		if addr == origin {
			continue
		}
		if err := ns.ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
		ns.net.Detach(addr)
	}
	ns.mgr.EndBatch()
	if ns.dir.Available(tun.Hops[1].HopID) {
		t.Skip("initiator holds a replica of its own hop anchor at this seed")
	}
	ns.eng.EnableReliability(Reliability{MaxAttempts: 3})
	env, err := BuildForward(tun, nil, id.HashString("d"), make([]byte, 100), ns.root.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	var out Outcome
	gotOut := false
	ns.eng.SendForward(origin, env, func(o Outcome) { out = o; gotOut = true })
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if !gotOut {
		t.Fatalf("no outcome for doomed flow")
	}
	if out.Delivered {
		t.Fatalf("flow delivered through a dead anchor")
	}
	if out.Attempts != 3 {
		t.Fatalf("Attempts = %d, want the full budget of 3", out.Attempts)
	}
	if !strings.Contains(out.FailedAt, "retransmit budget exhausted") {
		t.Fatalf("FailedAt = %q", out.FailedAt)
	}
	if ns.eng.FailFlows != 1 {
		t.Fatalf("FailFlows = %d, want exactly 1", ns.eng.FailFlows)
	}
}

// TestNetReliableChurnProperty is the in-flight churn property: with
// retransmission enabled, a forward flow completes if and only if every
// hop anchor retains a live replica once the dust settles — hop-node
// crashes mid-flight are survived via THA failover, and a truly dead
// tunnel fails cleanly within the attempt budget.
func TestNetReliableChurnProperty(t *testing.T) {
	survived, died := 0, 0
	for seed := uint64(1); seed <= 8; seed++ {
		killAll := seed%2 == 0
		ns := newNetSys(t, 250, 3, 900+seed)
		ns.eng.EnableReliability(Reliability{MaxAttempts: 6})
		in := ns.readyInitiator(t, "a", 12)
		tun, err := in.FormTunnel(4)
		if err != nil {
			t.Fatal(err)
		}
		origin := in.Node().Ref().Addr
		var dest id.ID
		ns.root.Bytes(dest[:])
		env, err := BuildForward(tun, nil, dest, make([]byte, 1000), ns.root.Split("b"))
		if err != nil {
			t.Fatal(err)
		}

		// Churn hits the tunnel: either every replica of one hop anchor
		// dies at once (strictly before the first copy can reach any hop
		// — min latency 1 ms plus serialization — so the outcome is
		// unambiguous), or just the current holders of two hops die
		// mid-flight (their replicas take over). In the latter case the
		// first copy may be on the wire toward a dying node; depending on
		// the seed it is rerouted or lost and retransmitted.
		churnAt := simnet.Time(time.Millisecond)
		if !killAll {
			churnAt = 300 * time.Millisecond
		}
		ns.kernel.Schedule(churnAt, func() {
			if killAll {
				ns.mgr.BeginBatch()
				for _, addr := range ns.dir.ReplicaAddrs(tun.Hops[2].HopID) {
					if addr == origin {
						continue
					}
					if err := ns.ov.Fail(addr); err == nil {
						ns.net.Detach(addr)
					}
				}
				ns.mgr.EndBatch()
				return
			}
			for _, hi := range []int{1, 2} {
				node, ok := ns.dir.HopNode(tun.Hops[hi].HopID)
				if !ok {
					continue
				}
				addr := node.Ref().Addr
				if addr == origin {
					continue
				}
				if err := ns.ov.Fail(addr); err == nil {
					ns.net.Detach(addr)
				}
			}
		})

		var out Outcome
		gotOut := false
		ns.eng.SendForward(origin, env, func(o Outcome) { out = o; gotOut = true })
		if err := ns.kernel.Run(); err != nil {
			t.Fatal(err)
		}
		if !gotOut {
			t.Fatalf("seed %d: flow vanished without an outcome", seed)
		}
		functional := true
		for _, h := range tun.Hops {
			if !ns.dir.Available(h.HopID) {
				functional = false
			}
		}
		if functional && !out.Delivered {
			t.Fatalf("seed %d: every hop anchor has a live replica but the flow failed: %+v", seed, out)
		}
		if !functional && out.Delivered {
			t.Fatalf("seed %d: flow delivered through a tunnel with a lost anchor", seed)
		}
		if out.Delivered {
			survived++
		} else {
			died++
		}
		t.Logf("seed %d: functional=%v delivered=%v attempts=%d", seed, functional, out.Delivered, out.Attempts)
	}
	// The seeds must cover both sides of the property, or it proves nothing.
	if survived == 0 || died == 0 {
		t.Fatalf("property not exercised on both sides: survived=%d died=%d", survived, died)
	}
}

func TestNetReliableDeterministicUnderFaults(t *testing.T) {
	run := func() (simnet.Time, int) {
		ns := newNetSys(t, 200, 3, 26)
		ns.net.InstallFaults(&simnet.FaultPlan{Seed: 9, LossRate: 0.15, SpikeRate: 0.1,
			SpikeMin: 100 * time.Millisecond, SpikeMax: 400 * time.Millisecond})
		ns.eng.EnableReliability(Reliability{MaxAttempts: 12})
		in := ns.readyInitiator(t, "a", 10)
		tun, err := in.FormTunnel(3)
		if err != nil {
			t.Fatal(err)
		}
		env, err := BuildForward(tun, nil, id.HashString("d"), make([]byte, 10_000), ns.root.Split("b"))
		if err != nil {
			t.Fatal(err)
		}
		var out Outcome
		ns.eng.SendForward(in.Node().Ref().Addr, env, func(o Outcome) { out = o })
		if err := ns.kernel.Run(); err != nil {
			t.Fatal(err)
		}
		if !out.Delivered {
			t.Fatalf("flow failed: %+v", out)
		}
		return out.At, out.Attempts
	}
	at1, att1 := run()
	at2, att2 := run()
	if at1 != at2 || att1 != att2 {
		t.Fatalf("reliable delivery not deterministic: (%v,%d) vs (%v,%d)", at1, att1, at2, att2)
	}
}

func TestHintCacheInvalidate(t *testing.T) {
	s := newSys(t, 200, 3, 27)
	in := s.readyInitiator(t, "a", 6)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewHintCache()
	if err := cache.Refresh(s.svc, tun); err != nil {
		t.Fatal(err)
	}
	hop := tun.Hops[1].HopID
	if cache.Get(hop) == simnet.NoAddr {
		t.Fatal("refresh left no hint")
	}
	cache.Invalidate(hop)
	if cache.Get(hop) != simnet.NoAddr {
		t.Fatal("invalidated hint still cached")
	}
	// Nil-safety mirrors Get.
	var nilCache *HintCache
	nilCache.Invalidate(hop)
}
