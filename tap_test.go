package tap

import (
	"bytes"
	"testing"
)

func TestNewDefaults(t *testing.T) {
	n, err := New(Options{Nodes: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n.Size() != 100 {
		t.Fatalf("size %d", n.Size())
	}
	o := n.Options()
	if o.ReplicationFactor != 3 || o.TunnelLength != 5 || o.DigitBits != 4 {
		t.Fatalf("defaults not applied: %+v", o)
	}
}

func TestClientLifecycle(t *testing.T) {
	n, err := New(Options{Nodes: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := n.NewClient("alice")
	if err != nil {
		t.Fatal(err)
	}
	if c.AnchorCount() != 0 {
		t.Fatalf("fresh client has anchors")
	}
	if _, err := c.NewTunnel(3); err == nil {
		t.Fatalf("tunnel formed without anchors")
	}
	if err := c.DeployAnchors(8); err != nil {
		t.Fatal(err)
	}
	if c.AnchorCount() != 8 {
		t.Fatalf("anchor count %d", c.AnchorCount())
	}
	tun, err := c.NewTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	if tun.Length() != 3 {
		t.Fatalf("tunnel length %d", tun.Length())
	}

	dest := KeyOf("destination-service")
	res, err := c.Send(tun, dest, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Payload) != "hello" {
		t.Fatalf("payload %q", res.Payload)
	}
	if res.Responder != n.OwnerOf(dest) {
		t.Fatalf("landed on wrong node")
	}

	// Grow the pool through the tunnel, then retire it.
	if err := c.DeployAnchorsViaTunnel(tun, 4); err != nil {
		t.Fatal(err)
	}
	if c.AnchorCount() != 12 {
		t.Fatalf("anchor count %d after tunnel deploy", c.AnchorCount())
	}
	if err := c.RetireTunnel(tun); err != nil {
		t.Fatal(err)
	}
	if c.AnchorCount() != 9 {
		t.Fatalf("anchor count %d after retire", c.AnchorCount())
	}
}

func TestFileRetrievalSurvivesTargetedFailures(t *testing.T) {
	n, err := New(Options{Nodes: 400, Seed: 3, DisableNetwork: true})
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("x"), 10_000)
	fid := n.PublishFile("bigfile", content)
	c, err := n.NewClient("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeployAnchors(12); err != nil {
		t.Fatal(err)
	}
	fwd, rep, err := c.NewTunnelPair(3)
	if err != nil {
		t.Fatal(err)
	}
	// Kill every current hop node of both tunnels (sparing endpoints).
	for _, tun := range []*Tunnel{fwd, rep} {
		for _, hid := range tun.HopIDs() {
			owner := n.OwnerOf(hid)
			if owner == c.NodeID() || owner == n.OwnerOf(fid) {
				continue
			}
			if err := n.FailNodeOwning(hid); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, err := c.RetrieveFileVia(fwd, rep, fid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("content mismatch")
	}
}

func TestRetrieveFileConvenience(t *testing.T) {
	n, err := New(Options{Nodes: 300, Seed: 4, DisableNetwork: true})
	if err != nil {
		t.Fatal(err)
	}
	fid := n.PublishFile("doc", []byte("contents"))
	c, _ := n.NewClient("carol")
	if err := c.DeployAnchors(12); err != nil {
		t.Fatal(err)
	}
	got, err := c.RetrieveFile(fid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "contents" {
		t.Fatalf("got %q", got)
	}
}

func TestSessionAPI(t *testing.T) {
	n, err := New(Options{Nodes: 300, Seed: 5, DisableNetwork: true})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := n.NewClient("dave")
	if err := c.DeployAnchors(10); err != nil {
		t.Fatal(err)
	}
	sess, err := c.OpenSession(KeyOf("ssh.example"), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := n.FailRandom(); err != nil {
			t.Fatal(err)
		}
		resp, err := sess.Exchange([]byte("ls"), func(req []byte) []byte {
			return append([]byte("ok: "), req...)
		})
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if string(resp) != "ok: ls" {
			t.Fatalf("resp %q", resp)
		}
	}
}

func TestAdversaryAPI(t *testing.T) {
	n, err := New(Options{Nodes: 300, Seed: 6, DisableNetwork: true})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := n.NewClient("eve-target")
	if err := c.DeployAnchors(10); err != nil {
		t.Fatal(err)
	}
	tun, err := c.NewTunnel(5)
	if err != nil {
		t.Fatal(err)
	}
	adv := n.Adversary()
	if adv.TunnelCorrupted(tun) {
		t.Fatalf("corrupted with no adversary")
	}
	got := adv.Corrupt(0.2)
	if got != 60 {
		t.Fatalf("collusion size %d", got)
	}
	if adv.LeakedAnchors() == 0 {
		t.Fatalf("20%% collusion leaked nothing out of 10 anchors x3 replicas (possible but wildly unlikely)")
	}
	rate := adv.CorruptionRate([]*Tunnel{tun})
	if rate != 0 && rate != 1 {
		t.Fatalf("single-tunnel rate %f", rate)
	}
}

func TestFailFractionLosesAnchors(t *testing.T) {
	n, err := New(Options{Nodes: 300, Seed: 7, DisableNetwork: true})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := n.NewClient("frank")
	if err := c.DeployAnchors(20); err != nil {
		t.Fatal(err)
	}
	failed := n.FailFraction(0.6)
	if failed != 180 {
		t.Fatalf("failed %d nodes", failed)
	}
	// With 60% simultaneous failure and k=3, some of 20 anchors are very
	// likely gone (p^k = 21.6% each).
	if c.AnchorCount() == 20 {
		t.Logf("warning: no anchors lost at p=0.6 (unlikely but possible)")
	}
	if n.Size() != 120 {
		t.Fatalf("size %d", n.Size())
	}
}

func TestChurnWaveAndJoin(t *testing.T) {
	n, err := New(Options{Nodes: 200, Seed: 8, DisableNetwork: true})
	if err != nil {
		t.Fatal(err)
	}
	n.ChurnWave(20, 20)
	if n.Size() != 200 {
		t.Fatalf("size %d after balanced wave", n.Size())
	}
	nid := n.Join()
	if n.OwnerOf(nid) != nid {
		t.Fatalf("joined node does not own its id")
	}
	if n.Size() != 201 {
		t.Fatalf("size %d after join", n.Size())
	}
}

func TestTimedTransferModes(t *testing.T) {
	n, err := New(Options{Nodes: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := n.NewClient("grace")
	if err := c.DeployAnchors(10); err != nil {
		t.Fatal(err)
	}
	dest := KeyOf("the-file")
	const size = 250_000
	overt, err := c.TimedTransfer(Overt, dest, size, 0)
	if err != nil {
		t.Fatal(err)
	}
	basic, err := c.TimedTransfer(TAPBasic, dest, size, 5)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := c.TimedTransfer(TAPOpt, dest, size, 5)
	if err != nil {
		t.Fatal(err)
	}
	if overt <= 0 || basic <= 0 || opt <= 0 {
		t.Fatalf("non-positive durations")
	}
	if basic <= overt {
		t.Fatalf("basic (%v) not slower than overt (%v)", basic, overt)
	}
	if opt >= basic {
		t.Fatalf("opt (%v) not faster than basic (%v)", opt, basic)
	}
}

func TestTimedTransferUnknownMode(t *testing.T) {
	n, err := New(Options{Nodes: 100, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := n.NewClient("m")
	if err := c.DeployAnchors(6); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TimedTransfer(TransferMode(99), KeyOf("d"), 100, 3); err == nil {
		t.Fatalf("unknown mode accepted")
	}
}

func TestTimedTransferPoolTooSmall(t *testing.T) {
	n, err := New(Options{Nodes: 100, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := n.NewClient("m")
	if err := c.DeployAnchors(2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TimedTransfer(TAPBasic, KeyOf("d"), 100, 5); err == nil {
		t.Fatalf("tunnel longer than pool accepted")
	}
}

func TestTimedTransferDisabled(t *testing.T) {
	n, err := New(Options{Nodes: 100, Seed: 10, DisableNetwork: true})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := n.NewClient("h")
	if _, err := c.TimedTransfer(Overt, KeyOf("x"), 100, 0); err == nil {
		t.Fatalf("timed transfer worked without a network")
	}
}

func TestPuzzleOption(t *testing.T) {
	n, err := New(Options{Nodes: 100, Seed: 11, PuzzleDifficulty: 6, DisableNetwork: true})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := n.NewClient("i")
	// DeployAnchors mints the puzzles transparently.
	if err := c.DeployAnchors(3); err != nil {
		t.Fatal(err)
	}
	if c.AnchorCount() != 3 {
		t.Fatalf("anchors %d", c.AnchorCount())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() ID {
		n, err := New(Options{Nodes: 150, Seed: 99, DisableNetwork: true})
		if err != nil {
			t.Fatal(err)
		}
		c, _ := n.NewClient("x")
		if err := c.DeployAnchors(5); err != nil {
			t.Fatal(err)
		}
		tun, err := c.NewTunnel(3)
		if err != nil {
			t.Fatal(err)
		}
		return tun.HopIDs()[0]
	}
	if run() != run() {
		t.Fatalf("API not deterministic for fixed seed")
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	if _, err := New(Options{Nodes: 100, DigitBits: 3}); err == nil {
		t.Fatalf("DigitBits=3 accepted")
	}
	if _, err := New(Options{Nodes: 100, LeafSize: 7}); err == nil {
		t.Fatalf("odd LeafSize accepted")
	}
	if _, err := New(Options{Nodes: -5}); err == nil {
		t.Fatalf("negative Nodes accepted")
	}
}

func TestMailPublicAPIRoundTrip(t *testing.T) {
	n, err := New(Options{Nodes: 300, Seed: 61, DisableNetwork: true})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := n.NewClient("a")
	b, _ := n.NewClient("b")
	for _, c := range []*Client{a, b} {
		if err := c.DeployAnchors(16); err != nil {
			t.Fatal(err)
		}
	}
	box := b.NewPseudonym()
	bid, err := a.SendMail(box, []byte("hello"), true)
	if err != nil {
		t.Fatal(err)
	}
	if n.PendingMail(box) != 1 {
		t.Fatalf("pending %d", n.PendingMail(box))
	}
	msgs, err := b.FetchMail(box)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Body) != "hello" {
		t.Fatalf("fetch mismatch: %v", msgs)
	}
	target, err := b.ReplyMail(msgs[0], []byte("hi back"))
	if err != nil {
		t.Fatal(err)
	}
	if target != bid {
		t.Fatalf("reply target %s, want bid %s", target.Short(), bid.Short())
	}
}

func TestParseAndKeyOf(t *testing.T) {
	k := KeyOf("name")
	parsed, err := ParseID(k.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != k {
		t.Fatalf("round trip failed")
	}
	if _, err := ParseID("zz"); err == nil {
		t.Fatalf("bad id accepted")
	}
}
