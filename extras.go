package tap

import (
	"fmt"

	"tap/internal/detect"
	"tap/internal/secroute"
	"tap/internal/simnet"
)

// This file exposes the two mechanisms the paper lists as open problems
// and this repository implements (see EXPERIMENTS.md "Beyond the paper"):
// tunnel health detection, and secure routing to hop nodes.

// --- fault injection ----------------------------------------------------------

// InjectDroppers makes ⌊p·N⌋ random live nodes silently drop all tunnel
// traffic they are asked to relay (they cannot tamper: layers are
// authenticated). Returns the number of droppers. Calling it again
// replaces the dropper set.
func (n *Network) InjectDroppers(p float64) int {
	droppers := make(map[simnet.Addr]struct{})
	refs := n.ov.LiveRefs()
	stream := n.root.Split("droppers")
	for _, idx := range stream.PermFirstK(len(refs), int(p*float64(len(refs)))) {
		droppers[refs[idx].Addr] = struct{}{}
	}
	if len(droppers) == 0 {
		n.svc.HopFilter = nil
	} else {
		n.svc.HopFilter = func(addr simnet.Addr, _ ID) bool {
			_, drop := droppers[addr]
			return !drop
		}
	}
	return len(droppers)
}

// --- tunnel health detection --------------------------------------------------

// TunnelMonitor manages a tunnel's lifecycle: end-to-end probing before
// use, immediate replacement of broken tunnels, and scheduled refresh
// against quiet anchor accumulation.
type TunnelMonitor = detect.Monitor

// ProbeTunnel sends a self-addressed nonce through the tunnel and
// verifies the echo: the active check for drops and lost anchors. A
// passing probe does NOT prove the tunnel is uncompromised — a passive
// full-collusion adversary relays faithfully — which is why monitors also
// refresh on a schedule.
func (c *Client) ProbeTunnel(t *Tunnel) error {
	return c.prober().Probe(c.in, t)
}

// prober lazily builds the client's prober.
func (c *Client) prober() *detect.Prober {
	if c.prb == nil {
		c.prb = detect.NewProber(c.net.svc, c.stream.Split("prober"))
	}
	return c.prb
}

// NewTunnelMonitor creates a monitor managing tunnels of length l
// (0 selects the network default) for this client. Call Tick once per
// application time unit.
func (c *Client) NewTunnelMonitor(l int) (*TunnelMonitor, error) {
	if l == 0 {
		l = c.net.opts.TunnelLength
	}
	return detect.NewMonitor(c.in, c.prober(), l)
}

// --- secure routing -------------------------------------------------------------

// CorruptRouters makes ⌊p·N⌋ random nodes misbehave during *routing*:
// they hijack lookups passing through them by claiming to own the key.
// This is the adversary SecureLookup defends against, orthogonal to the
// anchor-pooling collusion of Adversary.
func (n *Network) CorruptRouters(p float64) int {
	if n.routeAdv == nil {
		n.routeAdv = secroute.NewAdversary()
	}
	return n.routeAdv.MarkFraction(n.ov, p, n.root.Split("routers"))
}

// LookupResult reports a secure lookup.
type LookupResult struct {
	// Owner is the accepted owner of the key.
	Owner ID
	// Attempts counts the routes spent (1 = primary route accepted).
	Attempts int
	// Hops is the total overlay hops across attempts.
	Hops int
}

// SecureLookup resolves the owner of key from this client's node using
// the density failure test plus redundant diverse routes (and, in
// paranoid mode, cross-verification of every candidate — recommended for
// anchor lookups, where a hijack costs anonymity).
func (c *Client) SecureLookup(key ID, paranoid bool) (*LookupResult, error) {
	r := secroute.NewRouter(c.net.ov, c.net.routeAdv)
	r.AlwaysVerify = paranoid
	res, err := r.Lookup(c.in.Node().Ref().Addr, key)
	if err != nil {
		return nil, fmt.Errorf("tap: secure lookup: %w", err)
	}
	return &LookupResult{Owner: res.Owner.ID, Attempts: res.Attempts, Hops: res.Hops}, nil
}
