module tap

go 1.22
