package tap

// One benchmark per figure of the paper's evaluation (§7), each running a
// scaled-down but structurally complete instance of the corresponding
// experiment from internal/experiments — the same code cmd/tapsim uses at
// full size. Micro-benchmarks and the ablations called out in DESIGN.md §5
// follow.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem ./...

import (
	"testing"

	"tap/internal/core"
	"tap/internal/experiments"
	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/secroute"
	"time"

	"tap/internal/simnet"
	"tap/internal/tha"
)

// --- figure benchmarks --------------------------------------------------------

// BenchmarkFig2TunnelFailure regenerates Figure 2 (tunnel failure vs node
// failure fraction; current tunneling vs TAP k=3 and k=5).
func BenchmarkFig2TunnelFailure(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig2(experiments.Fig2Params{
			N: 600, Tunnels: 120, Length: 5,
			Ks:     []int{3, 5},
			Fracs:  []float64{0.1, 0.2, 0.3, 0.4, 0.5},
			Trials: 1, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Collusion regenerates Figure 3 (corrupted tunnels vs
// malicious fraction, k=3).
func BenchmarkFig3Collusion(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig3(experiments.Fig3Params{
			N: 600, Tunnels: 200, Length: 5, K: 3,
			Fracs:  []float64{0.05, 0.1, 0.2, 0.3},
			Trials: 1, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4aReplicationFactor regenerates Figure 4(a) (corruption vs
// replication factor k at p=0.1).
func BenchmarkFig4aReplicationFactor(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig4a(experiments.Fig4aParams{
			N: 600, Tunnels: 200, Length: 5,
			Ks: []int{1, 2, 3, 4, 5, 6, 7, 8}, Malicious: 0.1,
			Trials: 1, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4bTunnelLength regenerates Figure 4(b) (corruption vs
// tunnel length at p=0.1, k=3).
func BenchmarkFig4bTunnelLength(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig4b(experiments.Fig4bParams{
			N: 600, Tunnels: 200,
			Lengths: []int{1, 2, 3, 4, 5, 6, 7, 8}, K: 3, Malicious: 0.1,
			Trials: 1, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Churn regenerates Figure 5 (corruption over time under
// churn; un-refreshed vs refreshed tunnels).
func BenchmarkFig5Churn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig5(experiments.Fig5Params{
			N: 600, Tunnels: 120, Length: 5, K: 3, Malicious: 0.1,
			Units: 8, LeavePerUnit: 30, JoinPerUnit: 30,
			Trials: 1, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Transfer regenerates Figure 6 (2 Mb transfer time vs
// network size; overt vs TAP_basic vs TAP_opt at l=3 and l=5).
func BenchmarkFig6Transfer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig6(experiments.Fig6Params{
			Sizes: []int{100, 300, 1000}, Lengths: []int{3, 5}, K: 3,
			FileBytes: 250_000, Transfers: 5, Sims: 1, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- extension benchmarks -------------------------------------------------------

// BenchmarkExtSecureRouting regenerates the secure-routing extension
// table (honest-owner resolution vs malicious routers).
func BenchmarkExtSecureRouting(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := experiments.ExtSecRoute(experiments.ExtSecRouteParams{
			N: 600, Fracs: []float64{0.1, 0.2, 0.3}, Lookups: 60,
			Trials: 1, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtDetection regenerates the tunnel-detection extension table
// (send success, unmanaged vs monitored, under silent droppers).
func BenchmarkExtDetection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := experiments.ExtDetect(experiments.ExtDetectParams{
			N: 500, Length: 4, Fracs: []float64{0.05, 0.15}, Sends: 25,
			Trials: 1, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtCoverTraffic regenerates the cover-traffic cost table
// (network bytes multiplier vs cover rate) — §2's argument, measured.
func BenchmarkExtCoverTraffic(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := experiments.ExtCover(experiments.ExtCoverParams{
			N: 150, Rates: []float64{0, 1, 5}, Transfers: 2, FileBytes: 50_000,
			Length: 3, Trials: 1, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtThroughput regenerates the heavy-traffic streaming table at
// laptop scale: windowed vs stop-and-wait goodput, flow-completion tails,
// and retransmit ratio under loss, with concurrent zipf flows over pooled
// tunnels and churn during the ramp.
func BenchmarkExtThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := experiments.ExtThroughput(experiments.ExtThroughputParams{
			N: 300, Clients: 4, TunnelsPer: 2, Length: 3,
			Flows: 200, FlowBytes: 2048, Dests: 64,
			Windows: []int{1, 8}, LossRates: []float64{0, 0.05},
			ChurnFails: 6, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks --------------------------------------------------------

// BenchmarkAblationReplication sweeps k and reports both sides of the
// availability/anonymity tension on one workload: tunnel failure under
// 30% simultaneous node failure, and tunnel corruption under 10%
// collusion.
func BenchmarkAblationReplication(b *testing.B) {
	for _, k := range []int{1, 3, 5, 8} {
		b.Run(kName(k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fail, err := experiments.Fig2(experiments.Fig2Params{
					N: 500, Tunnels: 100, Length: 5, Ks: []int{k},
					Fracs: []float64{0.3}, Trials: 1, Seed: uint64(i) + 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				corr, err := experiments.Fig4a(experiments.Fig4aParams{
					N: 500, Tunnels: 100, Length: 5, Ks: []int{k},
					Malicious: 0.1, Trials: 1, Seed: uint64(i) + 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(fail.Mean(0.3, "TAP(k="+itoa(k)+")"), "fail_rate")
					b.ReportMetric(corr.Mean(float64(k), experiments.SeriesCorrupted), "corrupt_rate")
				}
			}
		})
	}
}

// BenchmarkAblationHintStaleness measures the §5 optimization's
// sensitivity to cache staleness: overlay hops per delivery as a function
// of how many hop nodes changed since the cache was refreshed.
func BenchmarkAblationHintStaleness(b *testing.B) {
	for _, stale := range []int{0, 1, 3, 5} {
		b.Run("stale_hops="+itoa(stale), func(b *testing.B) {
			b.ReportAllocs()
			totalHops := 0
			deliveries := 0
			for i := 0; i < b.N; i++ {
				root := rng.New(uint64(i) + 1)
				w, err := experiments.BuildWorld(500, 3, root.Split("world"))
				if err != nil {
					b.Fatal(err)
				}
				node := w.OV.RandomLive(root.Split("pick"))
				in, err := core.NewInitiator(w.Svc, node, root.Split("init"))
				if err != nil {
					b.Fatal(err)
				}
				if err := in.DeployDirect(8); err != nil {
					b.Fatal(err)
				}
				tun, err := in.FormTunnel(5)
				if err != nil {
					b.Fatal(err)
				}
				cache := core.NewHintCache()
				if err := cache.Refresh(w.Svc, tun); err != nil {
					b.Fatal(err)
				}
				// Invalidate `stale` hints by killing those hop nodes.
				for _, h := range tun.Hops[:stale] {
					hn, ok := w.Dir.HopNode(h.HopID)
					if !ok {
						b.Fatal("hop lost")
					}
					if hn.ID() == node.ID() {
						continue
					}
					if err := w.OV.Fail(hn.Ref().Addr); err != nil {
						b.Fatal(err)
					}
				}
				env, err := core.BuildForwardWithCache(tun, cache, id.HashString("d"), make([]byte, 100), root.Split("b"))
				if err != nil {
					b.Fatal(err)
				}
				res, err := w.Svc.DeliverForward(node.Ref().Addr, env)
				if err != nil {
					b.Fatal(err)
				}
				totalHops += res.Stats.OverlayHops
				deliveries++
			}
			b.ReportMetric(float64(totalHops)/float64(deliveries), "overlay_hops/delivery")
		})
	}
}

// BenchmarkAblationScatter compares the §3.5 scatter rule against uniform
// random anchor choice: corruption rate at p=0.15 for both policies.
func BenchmarkAblationScatter(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := rng.New(uint64(i) + 1)
		w, err := experiments.BuildWorld(500, 3, root.Split("world"))
		if err != nil {
			b.Fatal(err)
		}
		ts, err := experiments.DeployTunnels(w, 100, 5, root.Split("tunnels"))
		if err != nil {
			b.Fatal(err)
		}
		w.Col.MarkFraction(0.15, root.Split("mark"))
		if i == 0 {
			b.ReportMetric(w.Col.CorruptionRate(ts.Tunnels), "scatter_corrupt_rate")
		}
	}
}

// --- micro-benchmarks ------------------------------------------------------------

// BenchmarkPastryRoute measures one overlay lookup in a 10,000-node
// network (the paper's log_16 N promise).
func BenchmarkPastryRoute(b *testing.B) {
	root := rng.New(1)
	ov, err := pastry.Build(pastry.DefaultConfig(), 10_000, root.Split("overlay"))
	if err != nil {
		b.Fatal(err)
	}
	s := root.Split("keys")
	b.ReportAllocs()
	b.ResetTimer()
	hops := 0
	for i := 0; i < b.N; i++ {
		var key id.ID
		s.Bytes(key[:])
		_, h, err := ov.Lookup(ov.RandomLive(s).Ref().Addr, key)
		if err != nil {
			b.Fatal(err)
		}
		hops += h
	}
	b.ReportMetric(float64(hops)/float64(b.N), "hops/route")
}

// BenchmarkOverlayBuild measures constructing a 10,000-node overlay with
// full routing state (one per experiment trial).
func BenchmarkOverlayBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pastry.Build(pastry.DefaultConfig(), 10_000, rng.New(uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelScheduleRun measures the event kernel's steady-state
// schedule+dispatch cycle: 256 events across a millisecond-to-seconds
// delay spread (near ring and far heap both exercised), drained to
// empty. Steady state must be allocation-free — Schedule recycles event
// slots through the kernel-local freelist — so allocs/op is the gated
// number, not ns/op.
func BenchmarkKernelScheduleRun(b *testing.B) {
	k := simnet.NewKernel()
	delays := make([]simnet.Time, 256)
	for i := range delays {
		// 1ms .. ~4s, deterministic spread across calendar buckets.
		delays[i] = simnet.Time(time.Millisecond) * simnet.Time(1+i*i%4096)
	}
	fn := func() {}
	cycle := func() {
		now := k.Now()
		for _, d := range delays {
			k.At(now+d, fn)
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	// Warm the slot arena and every bucket the rotating window touches.
	for i := 0; i < 256; i++ {
		cycle()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
	b.ReportMetric(256, "events/op")
}

// BenchmarkTunnelWalk measures one complete 5-hop anonymous delivery
// (layer building + hop decryptions + routing) in a 1,000-node network.
func BenchmarkTunnelWalk(b *testing.B) {
	root := rng.New(1)
	w, err := experiments.BuildWorld(1000, 3, root.Split("world"))
	if err != nil {
		b.Fatal(err)
	}
	node := w.OV.RandomLive(root.Split("pick"))
	in, err := core.NewInitiator(w.Svc, node, root.Split("init"))
	if err != nil {
		b.Fatal(err)
	}
	if err := in.DeployDirect(8); err != nil {
		b.Fatal(err)
	}
	tun, err := in.FormTunnel(5)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	bs := root.Split("build")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := core.BuildForward(tun, nil, id.HashString("d"), payload, bs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Svc.DeliverForward(node.Ref().Addr, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLayeredSeal measures building the 5-layer Figure 1 message for
// a 250 KB (2 Mb) payload — the per-transfer cryptographic cost the paper
// calls negligible.
func BenchmarkLayeredSeal(b *testing.B) {
	root := rng.New(1)
	w, err := experiments.BuildWorld(200, 3, root.Split("world"))
	if err != nil {
		b.Fatal(err)
	}
	node := w.OV.RandomLive(root.Split("pick"))
	in, err := core.NewInitiator(w.Svc, node, root.Split("init"))
	if err != nil {
		b.Fatal(err)
	}
	if err := in.DeployDirect(8); err != nil {
		b.Fatal(err)
	}
	tun, err := in.FormTunnel(5)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 250_000)
	bs := root.Split("build")
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildForward(tun, nil, id.HashString("d"), payload, bs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLayeredPeel measures the hop side of the same 250 KB 5-layer
// message: one receive copy plus every layer decryption, the aggregate
// per-hop work one full tunnel traversal pays. Anchors are fetched through
// the directory, exactly as hop nodes obtain them.
func BenchmarkLayeredPeel(b *testing.B) {
	root := rng.New(1)
	w, err := experiments.BuildWorld(200, 3, root.Split("world"))
	if err != nil {
		b.Fatal(err)
	}
	node := w.OV.RandomLive(root.Split("pick"))
	in, err := core.NewInitiator(w.Svc, node, root.Split("init"))
	if err != nil {
		b.Fatal(err)
	}
	if err := in.DeployDirect(8); err != nil {
		b.Fatal(err)
	}
	tun, err := in.FormTunnel(5)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 250_000)
	env, err := core.BuildForward(tun, nil, id.HashString("d"), payload, root.Split("build"))
	if err != nil {
		b.Fatal(err)
	}
	anchors := make([]tha.Anchor, tun.Length())
	for i, h := range tun.Hops {
		hn, ok := w.Dir.HopNode(h.HopID)
		if !ok {
			b.Fatal("hop lost")
		}
		anchors[i], err = w.Dir.FetchAsHolder(hn.Ref().Addr, h.HopID)
		if err != nil {
			b.Fatal(err)
		}
	}
	scratch := make([]byte, len(env.Sealed))
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One receive copy, then each hop peels in place on the owned
		// buffer — the walker's exact pattern.
		sealed := scratch[:copy(scratch, env.Sealed)]
		for j := range anchors {
			layer, err := core.OpenForwardLayerInPlace(anchors[j], sealed)
			if err != nil {
				b.Fatal(err)
			}
			if layer.IsExit {
				if len(layer.Payload) != len(payload) {
					b.Fatal("short payload")
				}
				break
			}
			sealed = layer.Inner
		}
	}
}

// BenchmarkPoolProbeCycle measures one full TunnelPool probe round on a
// healthy 3-tunnel pool, driven to quiescence on the simulated clock:
// three echo envelopes built and walked end to end, ACK bookkeeping, and
// the health accounting on their return. This is the pool's steady-state
// background cost per ProbeInterval; the alloc-regression gate watches it
// so probing stays cheap enough to run continuously.
func BenchmarkPoolProbeCycle(b *testing.B) {
	root := rng.New(1)
	w, err := experiments.BuildWorld(200, 3, root.Split("world"))
	if err != nil {
		b.Fatal(err)
	}
	kernel := simnet.NewKernel()
	kernel.MaxSteps = 0
	net := simnet.NewNetwork(kernel, simnet.DefaultLinkModel(root.Seed()), w.OV.NumAddrs())
	w.Svc.Net = net
	eng := core.NewNetEngine(w.Svc, net)
	eng.EnableReliability(core.Reliability{MaxAttempts: 3})
	node := w.OV.RandomLive(root.Split("pick"))
	in, err := core.NewInitiator(w.Svc, node, root.Split("init"))
	if err != nil {
		b.Fatal(err)
	}
	pool, err := core.NewTunnelPool(in, eng, core.PoolConfig{})
	if err != nil {
		b.Fatal(err)
	}
	// Deliberately not Start()ed: the benchmark drives rounds itself so
	// each iteration is exactly one probe cycle, not a timer race.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.ProbeRound()
		if err := kernel.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if pool.HealthyCount() != pool.TargetSize() {
		b.Fatalf("pool degraded during benchmark: %d/%d healthy",
			pool.HealthyCount(), pool.TargetSize())
	}
}

// BenchmarkStreamThroughput measures the pipelined sliding-window stream
// protocol end to end on a fixed 50ms-RTT direct path with 1% loss — the
// conditions of the protocol's headline claim. One op is a complete
// 128 KB transfer on a pre-warmed engine, so allocs/op covers only the
// per-stream setup (send ring, receive state, id-map growth); the
// per-segment steady state is allocation-free (pinned exactly by
// TestStreamSteadyStateZeroAlloc) and the hot group's alloc gate watches
// this number for drift. The w=1 sub-benchmark is the stop-and-wait
// baseline: comparing the two sim_KB/s metrics restates the >=5x
// pipelining win on the simulated clock, independent of host speed.
func BenchmarkStreamThroughput(b *testing.B) {
	for _, w := range []int{1, 32} {
		b.Run("w="+itoa(w), func(b *testing.B) {
			root := rng.New(1)
			world, err := experiments.BuildWorld(100, 3, root.Split("world"))
			if err != nil {
				b.Fatal(err)
			}
			kernel := simnet.NewKernel()
			kernel.MaxSteps = 0
			net := simnet.NewNetwork(kernel, simnet.LinkModel{
				MinLatency: 25 * time.Millisecond,
				MaxLatency: 25 * time.Millisecond,
				Seed:       1,
			}, world.OV.NumAddrs())
			net.InstallFaults(&simnet.FaultPlan{Seed: 7, LossRate: 0.01})
			world.Svc.Net = net
			eng := core.NewNetEngine(world.Svc, net)
			src := world.OV.RandomLive(root.Split("src"))
			dst := world.OV.RandomLive(root.Split("dst"))
			if src.Ref().Addr == dst.Ref().Addr {
				b.Fatal("src and dst collided; pick another seed")
			}
			data := make([]byte, 128*1024)
			root.Split("data").Bytes(data)
			transfer := func() {
				s := eng.OpenStream(src.Ref().Addr, dst.ID(), dst.Ref().Addr, core.StreamConfig{Window: w})
				off := 0
				pump := func() {
					for off < len(data) {
						want := len(data) - off
						n := s.Write(data[off:])
						off += n
						if n < want {
							return // window full; OnWritable resumes
						}
					}
					s.Close()
				}
				s.OnWritable = pump
				pump()
				if err := kernel.Run(); err != nil {
					b.Fatal(err)
				}
				if !s.Done() {
					_, why := s.Failed()
					b.Fatalf("transfer failed: %s", why)
				}
			}
			transfer() // warm the packet, segment, and kernel-event pools
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			start := kernel.Now()
			for i := 0; i < b.N; i++ {
				transfer()
			}
			if sim := time.Duration(kernel.Now() - start); sim > 0 {
				b.ReportMetric(float64(len(data))*float64(b.N)/sim.Seconds()/1e3, "sim_KB/s")
			}
		})
	}
}

// BenchmarkPastryJoinProtocol measures one protocol-faithful join
// (route + state transfer) into a 5,000-node overlay.
func BenchmarkPastryJoinProtocol(b *testing.B) {
	root := rng.New(1)
	ov, err := pastry.Build(pastry.DefaultConfig(), 5000, root.Split("overlay"))
	if err != nil {
		b.Fatal(err)
	}
	s := root.Split("join")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ov.JoinViaRouting(ov.RandomLive(s).Ref().Addr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicaMigration measures the storage-layer cost of one node
// failure in a loaded system (2,000 anchors over 2,000 nodes, k=3). The
// world is rebuilt outside the timer whenever failures drain it.
func BenchmarkReplicaMigration(b *testing.B) {
	build := func(seed uint64) *experiments.World {
		root := rng.New(seed)
		w, err := experiments.BuildWorld(2000, 3, root.Split("world"))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.DeployTunnels(w, 400, 5, root.Split("tunnels")); err != nil {
			b.Fatal(err)
		}
		return w
	}
	w := build(1)
	s := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w.OV.Size() < 200 {
			b.StopTimer()
			w = build(uint64(i) + 3)
			b.StartTimer()
		}
		if err := w.OV.Fail(w.OV.RandomLive(s).Ref().Addr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSecureLookup measures one paranoid secure lookup (primary +
// redundant verification routes) in a 2,000-node overlay with 10%
// malicious routers.
func BenchmarkSecureLookup(b *testing.B) {
	root := rng.New(1)
	ov, err := pastry.Build(pastry.DefaultConfig(), 2000, root.Split("overlay"))
	if err != nil {
		b.Fatal(err)
	}
	adv := secroute.NewAdversary()
	adv.MarkFraction(ov, 0.1, root.Split("mark"))
	r := secroute.NewRouter(ov, adv)
	r.AlwaysVerify = true
	s := root.Split("keys")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var key id.ID
		s.Bytes(key[:])
		src := ov.RandomLive(s)
		if adv.IsMalicious(src.Ref().Addr) {
			continue
		}
		if _, err := r.Lookup(src.Ref().Addr, key); err != nil && err != secroute.ErrCensored {
			b.Fatal(err)
		}
	}
}

// --- helpers ---------------------------------------------------------------------

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func kName(k int) string { return "k=" + itoa(k) }
