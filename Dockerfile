# Build image for the real-process deployment binaries (tapboard,
# tapnode). Used by docker-compose.yml to run a five-node localhost
# overlay; see DESIGN.md §14.
FROM golang:1.22-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -o /out/tapboard ./cmd/tapboard \
 && CGO_ENABLED=0 go build -o /out/tapnode ./cmd/tapnode

FROM alpine:3.19
COPY --from=build /out/tapboard /out/tapnode /usr/local/bin/
# Default command is a relay node; compose overrides per service.
ENTRYPOINT ["tapnode"]
