// Package tap is a from-scratch Go implementation of TAP, the tunneling
// approach for anonymity in structured P2P systems by Zhu & Hu (ICPP
// 2004), together with every substrate the paper's evaluation ran on: a
// Pastry-style routing overlay, a PAST-style replicated store, a
// deterministic discrete-event network emulator, the Onion-Routing
// bootstrap, the fixed-node baseline tunneling, and the colluding
// adversary model.
//
// # What TAP is
//
// Classic P2P anonymity systems (Crowds, Tarzan, MorphMix) build an
// anonymous path out of specific nodes; the path dies when any member
// leaves. TAP names each tunnel hop by a DHT key (a hopid) instead of an
// address, and anchors the hop's symmetric key in the DHT, replicated on
// the k nodes numerically closest to the hopid. Whichever node currently
// owns the hopid *is* the hop, so tunnels tolerate node failures: a hop
// dies only when all k replica holders fail simultaneously.
//
// # Using this package
//
// The top-level API simulates a whole TAP deployment in-process:
//
//	net, err := tap.New(tap.Options{Nodes: 1000, Seed: 42})
//	alice, err := net.NewClient("alice")
//	err = alice.DeployAnchors(10)            // Onion-Routing bootstrap
//	tun, err := alice.NewTunnel(5)           // 5 anonymous hops
//	res, err := alice.Send(tun, dest, data)  // layered, fault-tolerant
//
// Anonymous file retrieval (the paper's §4 application), long-standing
// sessions, churn, targeted failures, and the adversary are all reachable
// from Network; see the examples directory for complete programs, and
// cmd/tapsim for the harness that regenerates every figure of the paper.
//
// All randomness derives from Options.Seed: any run is reproducible
// bit-for-bit.
package tap
