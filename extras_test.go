package tap

import (
	"testing"
)

func TestInjectDroppersAndProbe(t *testing.T) {
	n, err := New(Options{Nodes: 300, Seed: 31, DisableNetwork: true})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := n.NewClient("x")
	if err := c.DeployAnchors(10); err != nil {
		t.Fatal(err)
	}
	tun, err := c.NewTunnel(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ProbeTunnel(tun); err != nil {
		t.Fatalf("healthy tunnel failed probe: %v", err)
	}
	// Everyone drops: probes must fail.
	if got := n.InjectDroppers(1.0); got != 300 {
		t.Fatalf("droppers = %d", got)
	}
	if err := c.ProbeTunnel(tun); err == nil {
		t.Fatalf("probe passed through an all-dropping network")
	}
	// Clear the injection: healthy again.
	n.InjectDroppers(0)
	if err := c.ProbeTunnel(tun); err != nil {
		t.Fatalf("probe after clearing droppers: %v", err)
	}
}

func TestTunnelMonitorPublicAPI(t *testing.T) {
	n, err := New(Options{Nodes: 300, Seed: 32, DisableNetwork: true})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := n.NewClient("x")
	if err := c.DeployAnchors(10); err != nil {
		t.Fatal(err)
	}
	m, err := c.NewTunnelMonitor(3)
	if err != nil {
		t.Fatal(err)
	}
	m.RefreshEvery = 3
	first := m.Tunnel()
	for i := 0; i < 6; i++ {
		if err := m.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if m.Refreshed != 2 {
		t.Fatalf("refreshed = %d, want 2", m.Refreshed)
	}
	if m.Tunnel() == first {
		t.Fatalf("monitor never rotated the tunnel")
	}
}

func TestBaselineSessionPublicAPI(t *testing.T) {
	n, err := New(Options{Nodes: 300, Seed: 35, DisableNetwork: true})
	if err != nil {
		t.Fatal(err)
	}
	server := KeyOf("srv")
	fsess, err := OpenBaselineSession(n, server, 0) // default length
	if err != nil {
		t.Fatal(err)
	}
	resp, err := fsess.Exchange([]byte("x"), func(req []byte) []byte { return req })
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "x" {
		t.Fatalf("resp %q", resp)
	}
}

func TestChurnWaveWithNetworkDetaches(t *testing.T) {
	// With the simulated network enabled, churned-out nodes must be
	// detached so in-flight packets toward them drop.
	n, err := New(Options{Nodes: 200, Seed: 36})
	if err != nil {
		t.Fatal(err)
	}
	before := n.Size()
	n.ChurnWave(15, 15)
	if n.Size() != before {
		t.Fatalf("population changed")
	}
	// A timed transfer still works afterwards (handlers for joiners were
	// attached, dead addresses detached).
	c, _ := n.NewClient("x")
	if err := c.DeployAnchors(8); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TimedTransfer(TAPBasic, KeyOf("d"), 10_000, 3); err != nil {
		t.Fatal(err)
	}
}

func TestFailFractionWithNetwork(t *testing.T) {
	n, err := New(Options{Nodes: 200, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.FailFraction(0.25); got != 50 {
		t.Fatalf("failed %d", got)
	}
	if n.Size() != 150 {
		t.Fatalf("size %d", n.Size())
	}
}

func TestSecureLookupCleanNetwork(t *testing.T) {
	n, err := New(Options{Nodes: 400, Seed: 33, DisableNetwork: true})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := n.NewClient("x")
	key := KeyOf("some-key")
	res, err := c.SecureLookup(key, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Owner != n.OwnerOf(key) {
		t.Fatalf("secure lookup returned %s, owner is %s", res.Owner.Short(), n.OwnerOf(key).Short())
	}
	if res.Attempts != 1 {
		t.Fatalf("clean network needed %d attempts", res.Attempts)
	}
}

func TestSecureLookupWithCorruptRouters(t *testing.T) {
	n, err := New(Options{Nodes: 500, Seed: 34, DisableNetwork: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.CorruptRouters(0.15); got != 75 {
		t.Fatalf("corrupted %d routers", got)
	}
	c, _ := n.NewClient("x")
	honest, total := 0, 0
	for i := 0; i < 60; i++ {
		key := KeyOf("k" + string(rune('a'+i)))
		res, err := c.SecureLookup(key, true)
		if err != nil {
			continue // censored lookups are possible; not counted
		}
		total++
		if res.Owner == n.OwnerOf(key) {
			honest++
		}
	}
	if total == 0 {
		t.Fatal("all lookups censored at p=0.15?")
	}
	if float64(honest) < 0.85*float64(total) {
		t.Fatalf("only %d/%d paranoid lookups honest at p=0.15", honest, total)
	}
}
