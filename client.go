package tap

import (
	"fmt"
	"time"

	"tap/internal/app/anonfile"
	"tap/internal/app/mail"
	"tap/internal/app/session"
	"tap/internal/core"
	"tap/internal/detect"
	"tap/internal/rng"
)

// Client is one node's view of TAP: its anchor pool, tunnels, and
// anonymous operations. Create clients with Network.NewClient.
type Client struct {
	net    *Network
	in     *core.Initiator
	stream *rng.Stream
	prb    *detect.Prober
}

// NewClient attaches a TAP client to a uniformly random live node. The
// label keeps distinct clients on distinct deterministic random streams.
func (n *Network) NewClient(label string) (*Client, error) {
	n.clients++
	stream := n.root.SplitN("client-"+label, n.clients)
	node := n.ov.RandomLive(stream.Split("pick"))
	in, err := core.NewInitiator(n.svc, node, stream.Split("state"))
	if err != nil {
		return nil, fmt.Errorf("tap: %w", err)
	}
	return &Client{net: n, in: in, stream: stream.Split("ops")}, nil
}

// NodeID returns the id of the node this client runs on.
func (c *Client) NodeID() ID { return c.in.Node().ID() }

// AnchorCount returns the number of live anchors in the client's pool.
func (c *Client) AnchorCount() int { return c.in.PoolSize() }

// DeployAnchors deploys count tunnel hop anchors through the
// Onion-Routing bootstrap (§3.3), retrying over fresh relay paths if one
// dies mid-deployment. Until a client has anchors it cannot form tunnels.
func (c *Client) DeployAnchors(count int) error {
	return c.in.Bootstrap(count, c.net.pki, 5)
}

// DeployAnchorsViaTunnel deploys more anchors through an existing tunnel
// instead of the bootstrap (what a client does once its first tunnel
// works).
func (c *Client) DeployAnchorsViaTunnel(t *Tunnel, count int) error {
	return c.in.DeployViaTunnel(t, count)
}

// NewTunnel forms a tunnel of length l (0 selects the network default)
// from the client's anchor pool, scattering hopids per §3.5.
func (c *Client) NewTunnel(l int) (*Tunnel, error) {
	if l == 0 {
		l = c.net.opts.TunnelLength
	}
	return c.in.FormTunnel(l)
}

// NewTunnelPair forms a disjoint (forward, reply) tunnel pair, as the §4
// exchange requires.
func (c *Client) NewTunnelPair(l int) (fwd, rep *Tunnel, err error) {
	if l == 0 {
		l = c.net.opts.TunnelLength
	}
	tunnels, err := c.in.FormDisjointTunnels(2, l)
	if err != nil {
		return nil, nil, err
	}
	return tunnels[0], tunnels[1], nil
}

// RetireTunnel deletes the tunnel's anchors (with their password proofs)
// and drops them from the pool — the refresh policy the paper recommends
// against anchor accumulation.
func (c *Client) RetireTunnel(t *Tunnel) error {
	return c.in.DeleteAnchors(t)
}

// SendResult reports an anonymous send.
type SendResult struct {
	// Payload is the plaintext as it arrived at the destination owner.
	Payload []byte
	// Responder is the node that received it.
	Responder ID
	// OverlayHops is the total routing cost.
	OverlayHops int
}

// Send delivers payload anonymously through the tunnel to the node owning
// dest, with full layered encryption and fault-tolerant hop resolution.
func (c *Client) Send(t *Tunnel, dest ID, payload []byte) (*SendResult, error) {
	env, err := core.BuildForward(t, nil, dest, payload, c.stream)
	if err != nil {
		return nil, err
	}
	res, err := c.net.svc.DeliverForward(c.in.Node().Ref().Addr, env)
	if err != nil {
		return nil, err
	}
	return &SendResult{
		Payload:     res.Payload,
		Responder:   res.DestNode.ID,
		OverlayHops: res.Stats.OverlayHops,
	}, nil
}

// RetrieveFile fetches a published file anonymously over a fresh
// forward/reply tunnel pair (the complete §4 exchange, including the
// temporary keypair K_I, the reply bid, and the fake onion).
func (c *Client) RetrieveFile(fid ID) ([]byte, error) {
	fwd, rep, err := c.NewTunnelPair(0)
	if err != nil {
		return nil, err
	}
	res, err := anonfile.Retrieve(c.net.lib, c.in, fwd, rep, fid, nil, nil, c.stream.Split("retrieve"))
	if err != nil {
		return nil, err
	}
	return res.Content, nil
}

// RetrieveFileVia is RetrieveFile over caller-supplied tunnels, letting
// applications reuse long-lived tunnels across retrievals.
func (c *Client) RetrieveFileVia(fwd, rep *Tunnel, fid ID) ([]byte, error) {
	res, err := anonfile.Retrieve(c.net.lib, c.in, fwd, rep, fid, nil, nil, c.stream.Split("retrieve"))
	if err != nil {
		return nil, err
	}
	return res.Content, nil
}

// Session is a long-standing anonymous request/response session.
type Session = session.Session

// SessionHandler is the server-side request processor.
type SessionHandler = session.Handler

// OpenSession establishes a long-standing session to the owner of server,
// the paper's remote-login use case. The session survives hop-node
// failures.
func (c *Client) OpenSession(server ID, l int) (*Session, error) {
	if l == 0 {
		l = c.net.opts.TunnelLength
	}
	return session.Open(c.in, server, l, c.stream.Split("session"))
}

// FixedSession is a session over the "current tunneling" baseline: a
// fixed-node path that dies with any relay. It exists for comparisons.
type FixedSession = session.FixedSession

// OpenBaselineSession opens a fixed-node baseline session against the
// owner of server, for comparing against TAP sessions.
func OpenBaselineSession(n *Network, server ID, l int) (*FixedSession, error) {
	if l == 0 {
		l = n.opts.TunnelLength
	}
	return session.OpenFixed(n.svc, server, l, n.root.Split("baseline-session"))
}

// --- anonymous mail -----------------------------------------------------------

// MailMessage is one piece of anonymous mail.
type MailMessage = mail.Message

// NewPseudonym mints an unlinkable mailbox id for this client. Share it
// out of band; senders deposit to it without learning whose it is.
func (c *Client) NewPseudonym() ID {
	return mail.NewPseudonym(c.stream.Split("pseudonym"))
}

// SendMail deposits mail for a pseudonym through a fresh tunnel of the
// network's default length. When withReply is set, a single-use reply
// tunnel rides along and the returned bid identifies where the answer
// will land (this client's node).
func (c *Client) SendMail(pseudonym ID, body []byte, withReply bool) (ID, error) {
	t, err := c.NewTunnel(0)
	if err != nil {
		return ID{}, err
	}
	return c.net.mail.Send(c.in, t, pseudonym, body, withReply, c.stream.Split("mail-send"))
}

// FetchMail drains a pseudonym's mailbox anonymously over a fresh
// forward/reply tunnel pair.
func (c *Client) FetchMail(pseudonym ID) ([]MailMessage, error) {
	fwd, rep, err := c.NewTunnelPair(0)
	if err != nil {
		return nil, err
	}
	return c.net.mail.Fetch(c.in, fwd, rep, pseudonym, c.stream.Split("mail-fetch"))
}

// ReplyMail answers a received message over its attached reply tunnel.
func (c *Client) ReplyMail(m MailMessage, body []byte) (ID, error) {
	return c.net.mail.Reply(c.in.Node().Ref().Addr, m, body)
}

// PendingMail reports how many messages wait in a pseudonym's mailbox
// (an oracle view for tests and demos; a real recipient learns this by
// fetching).
func (n *Network) PendingMail(pseudonym ID) int { return n.mail.Pending(pseudonym) }

// --- timed transfers over the discrete-event network -------------------------

// TransferMode selects how a timed transfer travels.
type TransferMode int

// Transfer modes, matching Figure 6's curves.
const (
	Overt    TransferMode = iota // plain P2P routing, no anonymity
	TAPBasic                     // tunnel, hopids only
	TAPOpt                       // tunnel with §5 address hints
)

// TimedTransfer sends size bytes to the owner of dest over the simulated
// network and returns the transfer's simulated duration — the Figure 6
// measurement. Requires the network (DisableNetwork unset). Tunnel modes
// form a fresh tunnel of length l from the client's pool.
func (c *Client) TimedTransfer(mode TransferMode, dest ID, size int, l int) (time.Duration, error) {
	if c.net.eng == nil {
		return 0, fmt.Errorf("tap: network emulation disabled")
	}
	if l == 0 {
		l = c.net.opts.TunnelLength
	}
	start := c.net.kernel.Now()
	var out core.Outcome
	got := false
	done := func(o core.Outcome) { out = o; got = true }
	switch mode {
	case Overt:
		c.net.eng.SendOvert(c.in.Node().Ref().Addr, dest, size, done)
	case TAPBasic, TAPOpt:
		tun, err := c.in.FormTunnel(l)
		if err != nil {
			return 0, err
		}
		payload := make([]byte, size)
		var env *core.Envelope
		if mode == TAPOpt {
			cache := core.NewHintCache()
			if err := cache.Refresh(c.net.svc, tun); err != nil {
				return 0, err
			}
			env, err = core.BuildForwardWithCache(tun, cache, dest, payload, c.stream)
		} else {
			env, err = core.BuildForward(tun, nil, dest, payload, c.stream)
		}
		if err != nil {
			return 0, err
		}
		c.net.eng.SendForward(c.in.Node().Ref().Addr, env, done)
	default:
		return 0, fmt.Errorf("tap: unknown transfer mode %d", mode)
	}
	if err := c.net.kernel.Run(); err != nil {
		return 0, err
	}
	if !got || !out.Delivered {
		return 0, fmt.Errorf("tap: transfer failed (%s)", out.FailedAt)
	}
	return out.At - start, nil
}
