package tap_test

import (
	"fmt"
	"log"

	"tap"
)

// The canonical TAP flow: bootstrap, form a tunnel, send anonymously,
// survive a hop-node failure.
func Example() {
	net, err := tap.New(tap.Options{Nodes: 400, Seed: 7, DisableNetwork: true})
	if err != nil {
		log.Fatal(err)
	}
	alice, err := net.NewClient("alice")
	if err != nil {
		log.Fatal(err)
	}
	if err := alice.DeployAnchors(8); err != nil {
		log.Fatal(err)
	}
	tun, err := alice.NewTunnel(3)
	if err != nil {
		log.Fatal(err)
	}

	dest := tap.KeyOf("service")
	res, err := alice.Send(tun, dest, []byte("hello"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered: %s\n", res.Payload)

	// Kill the node currently serving hop 2; the anchor's replicas
	// promote a successor and the tunnel keeps working.
	if err := net.FailNodeOwning(tun.HopIDs()[1]); err != nil {
		log.Fatal(err)
	}
	res, err = alice.Send(tun, dest, []byte("still works"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after failure: %s\n", res.Payload)
	// Output:
	// delivered: hello
	// after failure: still works
}

// Anonymous file retrieval, the paper's §4 application.
func ExampleClient_RetrieveFile() {
	net, err := tap.New(tap.Options{Nodes: 300, Seed: 8, DisableNetwork: true})
	if err != nil {
		log.Fatal(err)
	}
	fid := net.PublishFile("docs/readme", []byte("file body"))
	bob, err := net.NewClient("bob")
	if err != nil {
		log.Fatal(err)
	}
	if err := bob.DeployAnchors(12); err != nil {
		log.Fatal(err)
	}
	content, err := bob.RetrieveFile(fid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", content)
	// Output:
	// file body
}

// Anonymous mail with a reply tunnel: mutual anonymity from TAP
// primitives.
func ExampleClient_SendMail() {
	net, err := tap.New(tap.Options{Nodes: 300, Seed: 9, DisableNetwork: true})
	if err != nil {
		log.Fatal(err)
	}
	sender, _ := net.NewClient("sender")
	recipient, _ := net.NewClient("recipient")
	for _, c := range []*tap.Client{sender, recipient} {
		if err := c.DeployAnchors(16); err != nil {
			log.Fatal(err)
		}
	}
	box := recipient.NewPseudonym()
	if _, err := sender.SendMail(box, []byte("tip"), false); err != nil {
		log.Fatal(err)
	}
	msgs, err := recipient.FetchMail(box)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d message: %s\n", len(msgs), msgs[0].Body)
	// Output:
	// 1 message: tip
}
