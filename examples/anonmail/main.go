// Anonymous mail over TAP — the introduction's second motivating
// application. A sender deposits mail for a pseudonym without learning
// whose it is; the recipient drains the box without revealing itself;
// and the recipient's answer rides a single-use reply tunnel back to the
// sender. Hop nodes die along the way; nobody notices.
//
//	go run ./examples/anonmail
package main

import (
	"fmt"
	"log"

	"tap"
)

func main() {
	net, err := tap.New(tap.Options{Nodes: 700, Seed: 21, DisableNetwork: true})
	if err != nil {
		log.Fatal(err)
	}

	// Two strangers.
	whistleblower, err := net.NewClient("whistleblower")
	if err != nil {
		log.Fatal(err)
	}
	journalist, err := net.NewClient("journalist")
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []*tap.Client{whistleblower, journalist} {
		if err := c.DeployAnchors(20); err != nil {
			log.Fatal(err)
		}
	}

	// The journalist publishes a pseudonym — a DHT key nobody can link
	// to their node.
	dropbox := journalist.NewPseudonym()
	fmt.Printf("journalist's pseudonymous dropbox: %s\n", dropbox.Short())
	fmt.Printf("(hosted by node %s, which has no idea whose box it hosts)\n\n", net.OwnerOf(dropbox).Short())

	// The whistleblower deposits a tip with a reply tunnel attached.
	bid, err := whistleblower.SendMail(dropbox, []byte("check the Q3 ledgers"), true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("whistleblower deposited a tip (+single-use reply tunnel, bid %s)\n", bid.Short())
	fmt.Printf("mailbox now holds %d message(s)\n\n", net.PendingMail(dropbox))

	// Some of the network dies. Nobody involved cares.
	for i := 0; i < 40; i++ {
		if _, err := net.FailRandom(whistleblower.NodeID(), journalist.NodeID(), net.OwnerOf(dropbox)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("(40 random nodes failed while the mail sat in the box)")

	// The journalist fetches anonymously.
	msgs, err := journalist.FetchMail(dropbox)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njournalist fetched %d message(s): %q\n", len(msgs), msgs[0].Body)

	// ...and answers over the attached reply tunnel. Neither party has
	// learned the other's node.
	target, err := journalist.ReplyMail(msgs[0], []byte("received. stay safe."))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reply delivered to bid %s — owned by the whistleblower's node: %v\n",
		target.Short(), net.OwnerOf(target) == whistleblower.NodeID())
}
