// Colluding adversary demo: a fraction of nodes pool every tunnel hop
// anchor they ever store. Watch anchors leak as churn migrates replicas
// onto malicious nodes, tunnels get corrupted over time — and the
// paper's recommended defense, periodic tunnel refresh, keep corruption
// flat.
//
//	go run ./examples/collusion
package main

import (
	"fmt"
	"log"

	"tap"
)

// Demo scale: the paper uses 10^4 nodes, 5,000 tunnels of length 5, and
// 20+ time units, where sub-percent corruption rates are measurable. At
// demo scale (40 tunnels) we shorten the tunnels and churn harder so the
// un-refreshed curve visibly climbs within a few units.
const (
	numClients = 40
	tunnelLen  = 3
	units      = 12
	churnSize  = 60
)

func main() {
	net, err := tap.New(tap.Options{Nodes: 600, Seed: 13, DisableNetwork: true})
	if err != nil {
		log.Fatal(err)
	}

	// 10% of nodes are malicious and colluding, per the paper's default.
	adv := net.Adversary()
	colluders := adv.Corrupt(0.10)
	fmt.Printf("%d-node network; adversary controls %d colluding nodes (10%%)\n\n",
		net.Size(), colluders)

	// Two client populations: one keeps its tunnels for the whole run,
	// one refreshes (retires + re-forms) every time unit.
	stale := make([]*tap.Client, numClients)
	fresh := make([]*tap.Client, numClients)
	staleTunnels := make([]*tap.Tunnel, numClients)
	freshTunnels := make([]*tap.Tunnel, numClients)
	for i := range stale {
		stale[i] = mustClient(net, fmt.Sprintf("stale-%d", i))
		fresh[i] = mustClient(net, fmt.Sprintf("fresh-%d", i))
		staleTunnels[i] = mustTunnel(stale[i])
		freshTunnels[i] = mustTunnel(fresh[i])
	}

	fmt.Printf("unit | leaked anchors | un-refreshed corrupted | refreshed corrupted\n")
	fmt.Printf("-----+----------------+------------------------+--------------------\n")
	fmt.Printf("%4d | %14d | %22.3f | %18.3f\n",
		0, adv.LeakedAnchors(), adv.CorruptionRate(staleTunnels), adv.CorruptionRate(freshTunnels))

	for unit := 1; unit <= units; unit++ {
		// One unit of churn: benign nodes leave and join; malicious nodes
		// stay put and accumulate anchors from migrations.
		net.ChurnWave(churnSize, churnSize)

		fmt.Printf("%4d | %14d | %22.3f | %18.3f\n",
			unit, adv.LeakedAnchors(),
			adv.CorruptionRate(staleTunnels),
			adv.CorruptionRate(freshTunnels))

		// The refresh policy: retire old anchors, deploy fresh, re-form.
		for i, c := range fresh {
			if err := c.RetireTunnel(freshTunnels[i]); err != nil {
				log.Fatal(err)
			}
			freshTunnels[i] = mustTunnel(c)
		}
	}

	fmt.Println("\nun-refreshed tunnels age and accumulate leaked hops; refreshed tunnels")
	fmt.Println("reset their exposure every unit — the paper's Figure 5 conclusion.")
}

func mustClient(net *tap.Network, label string) *tap.Client {
	c, err := net.NewClient(label)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.DeployAnchors(tunnelLen); err != nil {
		log.Fatal(err)
	}
	return c
}

func mustTunnel(c *tap.Client) *tap.Tunnel {
	if c.AnchorCount() < tunnelLen {
		if err := c.DeployAnchors(tunnelLen - c.AnchorCount()); err != nil {
			log.Fatal(err)
		}
	}
	t, err := c.NewTunnel(tunnelLen)
	if err != nil {
		log.Fatal(err)
	}
	return t
}
