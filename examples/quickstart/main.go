// Quickstart: build a TAP network, bootstrap a client through Onion
// Routing, form an anonymous tunnel, and send a message through it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tap"
)

func main() {
	// A 500-node structured P2P network. Every parameter defaults to the
	// paper's setting (b=4, L=16, k=3, l=5); Seed makes the run
	// reproducible.
	net, err := tap.New(tap.Options{Nodes: 500, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built a %d-node Pastry-style overlay\n", net.Size())

	// A client on a random node. Before it can form tunnels it deploys
	// tunnel hop anchors — anonymously, through a classic Onion Routing
	// path (the §3.3 bootstrap).
	alice, err := net.NewClient("alice")
	if err != nil {
		log.Fatal(err)
	}
	if err := alice.DeployAnchors(10); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice (%s) deployed %d anchors via the Onion-Routing bootstrap\n",
		alice.NodeID().Short(), alice.AnchorCount())

	// Form a 5-hop tunnel. Hops are DHT keys, not nodes: whichever node
	// is numerically closest to each hopid serves that hop.
	tun, err := alice.NewTunnel(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tunnel hops (hopids, not addresses!):")
	for i, hid := range tun.HopIDs() {
		fmt.Printf("  hop %d: %s (currently served by node %s)\n",
			i+1, hid.Short(), net.OwnerOf(hid).Short())
	}

	// Send a message anonymously to whatever node owns a key. Each hop
	// strips one layer of encryption and learns only the next hopid.
	dest := tap.KeyOf("mailbox/bob")
	res, err := alice.Send(tun, dest, []byte("hello from nobody in particular"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndelivered %q to node %s in %d overlay hops\n",
		res.Payload, res.Responder.Short(), res.OverlayHops)

	// The punchline: kill the node serving hop 3 — the tunnel keeps
	// working, because the anchor's replicas promote a successor.
	hop3 := tun.HopIDs()[2]
	before := net.OwnerOf(hop3)
	if err := net.FailNodeOwning(hop3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nkilled hop 3's node %s; hop 3 is now served by %s\n",
		before.Short(), net.OwnerOf(hop3).Short())
	res, err = alice.Send(tun, dest, []byte("still here"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second send succeeded: %q (the tunnel survived the failure)\n", res.Payload)
}
