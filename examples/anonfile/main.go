// Anonymous file retrieval (the paper's §4 application) under targeted
// node failures: the client fetches a file through a forward tunnel and
// receives it over a separate reply tunnel, while we repeatedly kill the
// nodes currently serving the tunnel hops.
//
//	go run ./examples/anonfile
package main

import (
	"bytes"
	"fmt"
	"log"

	"tap"
)

func main() {
	net, err := tap.New(tap.Options{Nodes: 800, Seed: 7, DisableNetwork: true})
	if err != nil {
		log.Fatal(err)
	}

	// Publish a file; it lives on the node closest to its id (the
	// responder).
	content := bytes.Repeat([]byte("TAP: tunnels without fixed nodes. "), 300)
	fid := net.PublishFile("library/tap-paper.txt", content)
	fmt.Printf("published %d-byte file as %s on node %s\n",
		len(content), fid.Short(), net.OwnerOf(fid).Short())

	client, err := net.NewClient("reader")
	if err != nil {
		log.Fatal(err)
	}
	if err := client.DeployAnchors(16); err != nil {
		log.Fatal(err)
	}

	// A disjoint forward/reply tunnel pair, as §4 requires ("a request
	// tunnel is different from a reply tunnel ... harder for an adversary
	// to correlate a request with a reply").
	fwd, rep, err := client.NewTunnelPair(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nforward tunnel: %v\n", shortIDs(fwd))
	fmt.Printf("reply tunnel:   %v\n", shortIDs(rep))

	// Retrieve once over healthy tunnels.
	got, err := client.RetrieveFileVia(fwd, rep, fid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nretrieval #1 OK (%d bytes, content intact: %v)\n",
		len(got), bytes.Equal(got, content))

	// Now kill the node behind every single hop of both tunnels.
	killed := 0
	for _, tun := range []*tap.Tunnel{fwd, rep} {
		for _, hid := range tun.HopIDs() {
			owner := net.OwnerOf(hid)
			if owner == client.NodeID() || owner == net.OwnerOf(fid) {
				continue
			}
			if err := net.FailNodeOwning(hid); err != nil {
				log.Fatal(err)
			}
			killed++
		}
	}
	fmt.Printf("\nkilled %d tunnel hop nodes (every hop of both tunnels)\n", killed)

	// Same tunnels, same anchors — new hop nodes. Retrieval still works.
	got, err = client.RetrieveFileVia(fwd, rep, fid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrieval #2 OK after the massacre (%d bytes, intact: %v)\n",
		len(got), bytes.Equal(got, content))
	fmt.Println("\nTAP tunnels are defined by hopids, so replica promotion replaced every dead hop.")
}

func shortIDs(t *tap.Tunnel) []string {
	out := make([]string, 0, t.Length())
	for _, hid := range t.HopIDs() {
		out = append(out, hid.Short())
	}
	return out
}
