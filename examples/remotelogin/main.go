// Long-standing remote-login sessions under churn — the paper's
// motivating application. A TAP session and a fixed-node baseline session
// run side by side while nodes keep failing; the baseline dies with its
// first relay, TAP keeps exchanging.
//
//	go run ./examples/remotelogin
package main

import (
	"errors"
	"fmt"
	"log"
	"strings"

	"tap"
	"tap/internal/core"
)

func main() {
	net, err := tap.New(tap.Options{Nodes: 600, Seed: 11, DisableNetwork: true})
	if err != nil {
		log.Fatal(err)
	}
	client, err := net.NewClient("operator")
	if err != nil {
		log.Fatal(err)
	}
	if err := client.DeployAnchors(12); err != nil {
		log.Fatal(err)
	}
	server := tap.KeyOf("ssh://build-box")

	tapSess, err := client.OpenSession(server, 3)
	if err != nil {
		log.Fatal(err)
	}
	fixedSess, err := tap.OpenBaselineSession(net, server, 3)
	if err != nil {
		log.Fatal(err)
	}

	shell := func(req []byte) []byte {
		return []byte(strings.ToUpper(string(req)) + " -> done")
	}

	// Each round, a dozen nodes crash. Sequential failures with k=3 can
	// never break a TAP tunnel (replicas migrate after every crash), but
	// the fixed path dies as soon as one of its relays is hit.
	const killsPerRound = 12
	fmt.Println("round | last victim  | TAP session        | fixed-node session")
	fmt.Println("------+--------------+--------------------+-------------------")
	fixedDead := false
	for round := 1; round <= 12; round++ {
		var victim tap.ID
		for i := 0; i < killsPerRound; i++ {
			// Spare the two endpoints so the comparison isolates path
			// resilience, not endpoint death.
			v, err := net.FailRandom(client.NodeID(), net.OwnerOf(server))
			if err != nil {
				log.Fatal(err)
			}
			victim = v
		}

		tapStatus := "exchange OK"
		if _, err := tapSess.Exchange([]byte(fmt.Sprintf("make test #%d", round)), shell); err != nil {
			tapStatus = "BROKEN: " + err.Error()
		}

		fixedStatus := "dead"
		if !fixedDead {
			if _, err := fixedSess.Exchange([]byte("make test"), shell); err == nil {
				fixedStatus = "exchange OK"
			} else if errors.Is(err, core.ErrRelayDead) {
				fixedStatus = "DIED (relay failed)"
				fixedDead = true
			} else {
				log.Fatal(err)
			}
		}
		fmt.Printf("%5d | %s     | %-18s | %s\n", round, victim.Short(), tapStatus, fixedStatus)
	}
	fmt.Printf("\nTAP completed %d/12 exchanges; the fixed-node session completed %d before dying.\n",
		tapSess.Exchanges(), fixedSess.Exchanges())
	fmt.Println("(144 of 600 nodes died during this run. The baseline's survival is luck of")
	fmt.Println(" the seed; TAP never breaks under one-at-a-time failures with k=3.)")
}
