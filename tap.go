package tap

import (
	"errors"
	"fmt"

	"tap/internal/adversary"
	"tap/internal/app/anonfile"
	"tap/internal/app/mail"
	"tap/internal/churn"
	"tap/internal/core"
	"tap/internal/id"
	"tap/internal/onionroute"
	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/secroute"
	"tap/internal/simnet"
	"tap/internal/tha"
)

// ID is a 160-bit identifier on the DHT ring: node ids, file ids, hopids,
// and bids all live in this space.
type ID = id.ID

// KeyOf hashes a name into the identifier space (SHA-1, as the paper's
// hopid derivation uses).
func KeyOf(name string) ID { return id.HashString(name) }

// ParseID decodes a 40-hex-digit identifier.
func ParseID(s string) (ID, error) { return id.Parse(s) }

// Tunnel is an anonymous TAP tunnel owned by a client.
type Tunnel = core.Tunnel

// FixedTunnel is the "current tunneling" baseline: a fixed-node path that
// dies with any member.
type FixedTunnel = core.FixedTunnel

// Options configures a simulated TAP deployment. The zero value of every
// field selects the paper's setting.
type Options struct {
	// Nodes is the overlay size. Default 1,000 (the paper evaluates up to
	// 10,000).
	Nodes int
	// ReplicationFactor is PAST's k: each tunnel hop anchor lives on the
	// k nodes closest to its hopid. Default 3.
	ReplicationFactor int
	// TunnelLength is the default l for NewTunnel and friends. Default 5
	// ("the tunnel length of 5 catches the knee of the curve").
	TunnelLength int
	// DigitBits is Pastry's b. Default 4.
	DigitBits int
	// LeafSize is Pastry's leaf set size L. Default 16.
	LeafSize int
	// Seed roots all randomness. Default 1.
	Seed uint64
	// PuzzleDifficulty, when positive, charges a CPU puzzle (hashcash
	// leading-zero bits) per anchor deployment, the §3.3 flood defense.
	PuzzleDifficulty int
	// DisableNetwork skips the discrete-event network; logical delivery
	// still works and construction is slightly cheaper.
	DisableNetwork bool
}

func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 1000
	}
	if o.ReplicationFactor == 0 {
		o.ReplicationFactor = 3
	}
	if o.TunnelLength == 0 {
		o.TunnelLength = 5
	}
	if o.DigitBits == 0 {
		o.DigitBits = 4
	}
	if o.LeafSize == 0 {
		o.LeafSize = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Network is a complete simulated TAP deployment: overlay, replicated
// anchor storage, network emulator, PKI, file library, and adversary.
type Network struct {
	opts Options
	root *rng.Stream

	ov   *pastry.Overlay
	mgr  *past.Manager
	dir  *tha.Directory
	svc  *core.Service
	pki  *onionroute.PKI
	lib  *anonfile.Library
	mail *mail.Service
	col  *adversary.Collusion

	kernel *simnet.Kernel
	simnet *simnet.Network
	eng    *core.NetEngine

	clients    int
	failStream *rng.Stream
	routeAdv   *secroute.Adversary
}

// New builds a deployment per opts.
func New(opts Options) (*Network, error) {
	opts = opts.withDefaults()
	root := rng.New(opts.Seed)
	cfg := pastry.Config{B: opts.DigitBits, LeafSize: opts.LeafSize, MaxRouteHops: 64}
	ov, err := pastry.Build(cfg, opts.Nodes, root.Split("overlay"))
	if err != nil {
		return nil, fmt.Errorf("tap: %w", err)
	}
	mgr := past.NewManager(ov, opts.ReplicationFactor)
	dir := tha.NewDirectory(ov, mgr)
	dir.PuzzleDifficulty = opts.PuzzleDifficulty
	svc := core.NewService(ov, dir, root.Split("svc"))
	n := &Network{
		opts: opts,
		root: root,
		ov:   ov,
		mgr:  mgr,
		dir:  dir,
		svc:  svc,
		pki:  onionroute.NewPKI(root.Split("pki")),
		col:  adversary.NewCollusion(ov, mgr),
	}
	n.lib = anonfile.NewLibrary(svc)
	n.mail = mail.NewService(svc)
	if !opts.DisableNetwork {
		n.kernel = simnet.NewKernel()
		n.kernel.MaxSteps = 50_000_000
		n.simnet = simnet.NewNetwork(n.kernel, simnet.DefaultLinkModel(opts.Seed), ov.NumAddrs())
		svc.Net = n.simnet
		n.eng = core.NewNetEngine(svc, n.simnet)
	}
	return n, nil
}

// Size returns the number of live nodes.
func (n *Network) Size() int { return n.ov.Size() }

// Options returns the configuration the network was built with.
func (n *Network) Options() Options { return n.opts }

// OwnerOf returns the id of the live node numerically closest to key.
func (n *Network) OwnerOf(key ID) ID { return n.ov.OwnerOf(key).ID() }

// --- membership -------------------------------------------------------------

// ErrNoSuchNode reports an unknown or dead node.
var ErrNoSuchNode = errors.New("tap: no such live node")

// FailNodeOwning fails the live node that currently owns key (useful for
// killing a specific tunnel hop node).
func (n *Network) FailNodeOwning(key ID) error {
	node := n.ov.OwnerOf(key)
	if node == nil {
		return ErrNoSuchNode
	}
	addr := node.Ref().Addr
	if err := n.ov.Fail(addr); err != nil {
		return err
	}
	if n.simnet != nil {
		n.simnet.Detach(addr)
	}
	return nil
}

// FailRandom fails one uniformly random live node and returns its id.
// Nodes listed in avoid are spared (e.g. a client's own node or a file's
// responder, when an experiment must keep the endpoints alive).
func (n *Network) FailRandom(avoid ...ID) (ID, error) {
	if n.failStream == nil {
		n.failStream = n.root.Split("fail")
	}
	stream := n.failStream
	for tries := 0; tries < 1024; tries++ {
		node := n.ov.RandomLive(stream)
		nid := node.ID()
		spared := false
		for _, a := range avoid {
			if a == nid {
				spared = true
				break
			}
		}
		if spared {
			continue
		}
		addr := node.Ref().Addr
		if err := n.ov.Fail(addr); err != nil {
			return ID{}, err
		}
		if n.simnet != nil {
			n.simnet.Detach(addr)
		}
		return nid, nil
	}
	return ID{}, fmt.Errorf("tap: no failable node outside the avoid set")
}

// FailFraction fails ⌊p·N⌋ random nodes simultaneously (no re-replication
// between failures): anchors whose whole replica set is hit are lost.
// Returns how many nodes failed.
func (n *Network) FailFraction(p float64) int {
	victims := churn.FailFraction(n.ov, n.mgr, p, n.root.Split("failfrac"), nil)
	if n.simnet != nil {
		for _, v := range victims {
			n.simnet.Detach(v.Addr)
		}
	}
	return len(victims)
}

// ChurnWave performs one unit of churn: `leaves` random benign departures
// then `joins` arrivals, with repair between departures. Malicious nodes
// never leave.
func (n *Network) ChurnWave(leaves, joins int) {
	left := churn.Wave(n.ov, leaves, joins, n.root.Split("wave"), func(a simnet.Addr) bool {
		return !n.col.IsMalicious(a)
	})
	_ = left
	if n.simnet != nil {
		// Detach departed addresses: any address no longer live.
		for a := 0; a < n.ov.NumAddrs(); a++ {
			node := n.ov.Node(simnet.Addr(a))
			if node != nil && !node.Alive() && n.simnet.Attached(simnet.Addr(a)) {
				n.simnet.Detach(simnet.Addr(a))
			}
		}
	}
}

// Join adds one fresh node and returns its id.
func (n *Network) Join() ID {
	return n.ov.Join().ID()
}

// --- files -------------------------------------------------------------------

// PublishFile stores content in the network under H(name) and returns the
// file id. The file lives on the node closest to the id (its responder).
func (n *Network) PublishFile(name string, content []byte) ID {
	return n.lib.Publish(name, content)
}

// --- adversary ----------------------------------------------------------------

// Adversary exposes the colluding-malicious-node model.
type Adversary struct{ n *Network }

// Adversary returns the network's adversary handle.
func (n *Network) Adversary() Adversary { return Adversary{n} }

// Corrupt marks ⌊p·N⌋ random nodes malicious and colluding; they pool
// every anchor replica they ever receive. Returns the collusion size.
func (a Adversary) Corrupt(p float64) int {
	return a.n.col.MarkFraction(p, a.n.root.Split("corrupt"))
}

// LeakedAnchors returns how many distinct anchors the collusion holds.
func (a Adversary) LeakedAnchors() int { return a.n.col.LeakedCount() }

// TunnelCorrupted reports whether the adversary holds every hop anchor of
// the tunnel (the paper's case-1 compromise).
func (a Adversary) TunnelCorrupted(t *Tunnel) bool { return a.n.col.TunnelCorrupted(t) }

// CorruptionRate returns the corrupted fraction of a tunnel population.
func (a Adversary) CorruptionRate(tunnels []*Tunnel) float64 {
	return a.n.col.CorruptionRate(tunnels)
}
