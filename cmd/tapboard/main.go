// Command tapboard runs the bulletin-board coordinator for a
// real-process TAP overlay: it assigns joining tapnode processes their
// transport addresses, hands out the peer table, and tracks liveness
// via heartbeats and connection state.
//
//	tapboard -listen 127.0.0.1:7070
//
// The first stdout line is "tapboard listening on <addr>", so scripts
// (and the integration test) can bind port 0 and discover the real one.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tap/internal/board"
	"tap/internal/obs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "host:port to listen on")
	stale := flag.Duration("stale", 30*time.Second, "prune members with no heartbeat for this long (0 disables)")
	verbose := flag.Bool("v", false, "log membership changes")
	metricsAddr := flag.String("metrics-addr", "", "host:port for /metrics and /debug/pprof (empty disables)")
	flag.Parse()

	cfg := board.Config{StaleAfter: *stale}
	if *verbose {
		cfg.Logf = log.Printf
	}
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		obs.RegisterRuntimeMetrics(reg)
		bound, stopMetrics, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer stopMetrics()
		// Scraped by the integration test; keep the format stable.
		fmt.Printf("tapboard metrics listening on %s\n", bound)
		cfg.Registry = reg
	}
	b := board.New(cfg)
	addr, err := b.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tapboard listening on %s\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	b.Close()
}
