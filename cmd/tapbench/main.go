// Command tapbench is the benchmark-regression harness: it runs the
// repository's benchmarks through `go test -bench` and emits a
// machine-readable JSON report (ns/op, B/op, allocs/op and any custom
// metrics, per benchmark), suitable for committing as BENCH_baseline.json
// / BENCH_current.json and for CI artifacts.
//
// Benchmarks are grouped by cost so each group can use a sampling policy
// matched to its runtime:
//
//   - hot:     the steady-state hot paths (LayeredSeal/LayeredPeel, the
//     TunnelPool probe cycle, the kernel schedule/run cycle, the
//     windowed stream transfer, and the obs counter/histogram increment
//     paths that instrument all of them) — many timed samples, minimum
//     taken, so shared-VM scheduler noise does not masquerade as a
//     regression (or an improvement);
//   - micro:   the remaining micro-benchmarks — a few short samples;
//   - figures: the figure/extension/ablation experiment benchmarks —
//     one iteration each (they are end-to-end experiments; their value
//     here is allocation accounting and coarse trend, not ns precision).
//
// Compare a fresh run against a committed baseline with -baseline:
//
//	go run ./cmd/tapbench -groups hot -baseline BENCH_baseline.json
//
// The comparison is a report, not a gate: the exit status stays 0 unless
// -max-regress is set to a positive percentage.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's aggregated measurement. When a group runs
// count > 1, the sample with the lowest ns/op is reported whole: minima
// are robust to the one-sided noise of a shared machine, and keeping the
// whole winning sample (rather than per-field minima) keeps the fields
// mutually consistent.
type Result struct {
	Name        string             `json:"name"`
	Group       string             `json:"group"`
	Samples     int                `json:"samples"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	MBPerS      float64            `json:"mb_per_s,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the JSON document tapbench emits.
type Report struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	NumCPU      int      `json:"num_cpu"`
	Method      string   `json:"method"`
	Args        []string `json:"args"`
	Benchmarks  []Result `json:"benchmarks"`
}

// group describes one benchmark family and its sampling policy.
type group struct {
	name      string
	pattern   string // -bench regex
	benchtime string
	count     int
}

var defaultGroups = []group{
	{name: "hot", pattern: "^(BenchmarkLayeredSeal|BenchmarkLayeredPeel|BenchmarkPoolProbeCycle|BenchmarkKernelScheduleRun|BenchmarkStreamThroughput|BenchmarkObsCounterInc|BenchmarkObsHistogramObserve)$", benchtime: "500ms", count: 10},
	{name: "micro", pattern: "^(BenchmarkSeal|BenchmarkOpen|BenchmarkSealer|BenchmarkPastryRoute|BenchmarkOverlayBuild|BenchmarkTunnelWalk|BenchmarkPastryJoinProtocol|BenchmarkReplicaMigration|BenchmarkSecureLookup)", benchtime: "200ms", count: 3},
	{name: "figures", pattern: "^(BenchmarkFig|BenchmarkExt|BenchmarkAblation)", benchtime: "1x", count: 1},
}

func main() {
	var (
		groupsFlag      = flag.String("groups", "hot,micro,figures", "comma-separated groups to run (hot, micro, figures)")
		only            = flag.String("only", "", "extra regex ANDed onto each group's benchmark pattern")
		out             = flag.String("out", "", "write the JSON report to this file (default: stdout)")
		baseline        = flag.String("baseline", "", "compare against this previously captured JSON report")
		quick           = flag.Bool("quick", false, "force -benchtime=1x -count=1 for every group (CI smoke mode)")
		pkgs            = flag.String("pkgs", "./...", "package pattern handed to go test")
		maxRegress      = flag.Float64("max-regress", 0, "exit non-zero if any ns/op regresses more than this percent vs -baseline (0 = report only)")
		maxAllocRegress = flag.Float64("max-alloc-regress", 0, "exit non-zero if any allocs/op regresses more than this percent vs -baseline (0 = report only)")
		cpuProfile      = flag.String("cpuprofile", "", "pass -cpuprofile to go test (requires -pkgs to name a single package)")
		memProfile      = flag.String("memprofile", "", "pass -memprofile to go test (requires -pkgs to name a single package)")
	)
	flag.Parse()

	if *cpuProfile != "" || *memProfile != "" {
		// go test rejects -cpuprofile/-memprofile across multiple packages,
		// and successive groups would overwrite the profile file: profiling
		// runs must pin one package and one group.
		if strings.Contains(*pkgs, "...") {
			fmt.Fprintln(os.Stderr, "tapbench: -cpuprofile/-memprofile need -pkgs to name a single package (e.g. -pkgs .)")
			os.Exit(2)
		}
		if strings.Contains(*groupsFlag, ",") {
			fmt.Fprintln(os.Stderr, "tapbench: -cpuprofile/-memprofile need a single -groups entry (e.g. -groups hot)")
			os.Exit(2)
		}
	}
	profileArgs := func() (out []string) {
		if *cpuProfile != "" {
			out = append(out, "-cpuprofile="+*cpuProfile)
		}
		if *memProfile != "" {
			out = append(out, "-memprofile="+*memProfile)
		}
		return out
	}()

	selected := map[string]bool{}
	for _, g := range strings.Split(*groupsFlag, ",") {
		if g = strings.TrimSpace(g); g != "" {
			selected[g] = true
		}
	}

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Method:      "per group: go test -run=^$ -bench=<pattern> -benchmem -benchtime=<t> -count=<n>; per benchmark, the whole sample with minimum ns/op is kept",
		Args:        os.Args[1:],
	}
	for _, g := range defaultGroups {
		if !selected[g.name] {
			continue
		}
		if *quick {
			g.benchtime, g.count = "1x", 1
		}
		results, err := runGroup(g, *only, *pkgs, profileArgs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tapbench: group %s: %v\n", g.name, err)
			os.Exit(1)
		}
		rep.Benchmarks = append(rep.Benchmarks, results...)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool { return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name })

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "tapbench: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tapbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tapbench: wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
	} else {
		os.Stdout.Write(blob)
	}

	if *baseline != "" {
		regressed, err := compare(*baseline, rep, *maxRegress, *maxAllocRegress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tapbench: compare: %v\n", err)
			os.Exit(1)
		}
		if regressed {
			os.Exit(2)
		}
	}
}

// runGroup shells out to go test for one group and aggregates its output.
func runGroup(g group, only, pkgs string, extraArgs []string) ([]Result, error) {
	pattern := g.pattern
	args := []string{"test", "-run=^$", "-bench=" + pattern, "-benchmem",
		"-benchtime=" + g.benchtime, "-count=" + strconv.Itoa(g.count)}
	args = append(args, extraArgs...)
	args = append(args, pkgs)
	fmt.Fprintf(os.Stderr, "tapbench: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}

	var onlyRe *regexp.Regexp
	if only != "" {
		if onlyRe, err = regexp.Compile(only); err != nil {
			return nil, fmt.Errorf("bad -only regex: %w", err)
		}
	}
	best := map[string]*Result{}
	sc := bufio.NewScanner(pipe)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		r, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if onlyRe != nil && !onlyRe.MatchString(r.Name) {
			continue
		}
		r.Group = g.name
		if prev, seen := best[r.Name]; !seen {
			r.Samples = 1
			best[r.Name] = &r
		} else {
			prev.Samples++
			if r.NsPerOp < prev.NsPerOp {
				r.Samples = prev.Samples
				best[r.Name] = &r
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go test: %w", err)
	}
	out := make([]Result, 0, len(best))
	for _, r := range best {
		out = append(out, *r)
	}
	return out, nil
}

// parseBenchLine decodes one `go test -bench` output line, e.g.
//
//	BenchmarkLayeredSeal-1  796  1497471 ns/op  166.97 MB/s  2551552 B/op  117 allocs/op
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		case "MB/s":
			r.MBPerS = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

// compare prints a delta table against a baseline report and returns
// whether any benchmark regressed beyond maxRegress percent on ns/op or
// maxAllocRegress percent on allocs/op (each gate active only when set).
// The alloc gate uses an absolute slack of one allocation: a 0->1 or 1->2
// step on a nearly alloc-free benchmark is always a regression worth
// failing, while percentage math alone would divide by zero or flag noise.
func compare(path string, cur Report, maxRegress, maxAllocRegress float64) (bool, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var base Report
	if err := json.Unmarshal(blob, &base); err != nil {
		return false, err
	}
	baseBy := map[string]Result{}
	for _, r := range base.Benchmarks {
		baseBy[r.Name] = r
	}
	regressed := false
	fmt.Printf("%-40s %14s %14s %8s %10s %10s\n", "benchmark", "base ns/op", "cur ns/op", "Δns", "base allocs", "cur allocs")
	for _, r := range cur.Benchmarks {
		b, ok := baseBy[r.Name]
		if !ok || b.NsPerOp == 0 {
			fmt.Printf("%-40s %14s %14.0f %8s %10s %10.0f\n", r.Name, "-", r.NsPerOp, "new", "-", r.AllocsPerOp)
			continue
		}
		d := (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		fmt.Printf("%-40s %14.0f %14.0f %+7.1f%% %10.0f %10.0f\n", r.Name, b.NsPerOp, r.NsPerOp, d, b.AllocsPerOp, r.AllocsPerOp)
		if maxRegress > 0 && d > maxRegress {
			fmt.Printf("  ^ regression beyond -max-regress=%.1f%%\n", maxRegress)
			regressed = true
		}
		if maxAllocRegress > 0 && r.AllocsPerOp > b.AllocsPerOp+0.5 {
			da := 100.0
			if b.AllocsPerOp > 0 {
				da = (r.AllocsPerOp - b.AllocsPerOp) / b.AllocsPerOp * 100
			}
			if da > maxAllocRegress {
				fmt.Printf("  ^ allocs/op regression %+.1f%% beyond -max-alloc-regress=%.1f%%\n", da, maxAllocRegress)
				regressed = true
			}
		}
	}
	return regressed, nil
}
