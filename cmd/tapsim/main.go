// Command tapsim regenerates the figures of "TAP: A Novel Tunneling
// Approach for Anonymity in Structured P2P Systems" (Zhu & Hu, ICPP
// 2004).
//
// Usage:
//
//	tapsim -experiment fig2 [flags]      one figure
//	tapsim -experiment all  [flags]      every figure
//
// By default tapsim runs at a laptop-friendly scale (1/10 of the paper's
// network). Pass -paper for the full 10,000-node, 5,000-tunnel setting —
// expect minutes per figure. All runs are deterministic in -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"tap/internal/experiments"
	"tap/internal/trace"
)

func main() {
	var (
		exp     = flag.String("experiment", "all", "fig2|fig3|fig4a|fig4b|fig5|fig6|all")
		n       = flag.Int("n", 1000, "network size (nodes)")
		tunnels = flag.Int("tunnels", 500, "number of tunnels")
		length  = flag.Int("length", 5, "tunnel length l")
		k       = flag.Int("k", 3, "replication factor")
		trials  = flag.Int("trials", 3, "Monte-Carlo trials per point")
		seed    = flag.Uint64("seed", 2004, "root random seed")
		paper   = flag.Bool("paper", false, "use the paper's full scale (N=10000, 5000 tunnels)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		walk    = flag.Bool("fullwalk", false, "fig2: verify tunnels by end-to-end delivery, not just anchor availability")
		sims    = flag.Int("sims", 3, "fig6: simulations per network size")
		xfers   = flag.Int("transfers", 20, "fig6: transfers per simulation")
		units   = flag.Int("units", 20, "fig5: churn time units")
		tails   = flag.Bool("tails", false, "fig6: also report p95 per mode")
		contend = flag.Bool("contention", false, "fig6: per-node uplink queuing in the link model")
		sizes   = flag.String("sizes", "", "ext-scale: comma-separated network sizes (default 1000,10000,100000,1000000)")
		routes  = flag.Int("routes", 0, "ext-scale: measured routes per size (default 10000)")
		budget  = flag.Duration("budget", 0, "ext-scale: fail if the sweep exceeds this wall-clock budget (0 = none)")
		flows   = flag.Int("flows", 0, "ext-throughput: concurrent stream flows per combo (default 2000)")
		windows = flag.String("windows", "", "ext-throughput: comma-separated send-window sizes (default 1,16)")
		clients = flag.Int("clients", 0, "ext-throughput: stream sources (default 16)")
		fbytes  = flag.Int("flowbytes", 0, "ext-throughput: payload bytes per stream (default 2048)")
		outDir  = flag.String("out", "", "also write each table as CSV into this directory")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "tapsim: -out: %v\n", err)
			os.Exit(1)
		}
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tapsim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "tapsim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		// The heap profile is written after the experiments finish (or on
		// any exit path that runs the defers).
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tapsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "tapsim: -memprofile: %v\n", err)
			}
		}()
	}

	if *paper {
		*n = 10_000
		*tunnels = 5_000
	}

	run := func(name string, fn func() (*trace.Table, error)) {
		start := time.Now()
		tbl, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tapsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *csv {
			tbl.RenderCSV(os.Stdout)
		} else {
			tbl.Render(os.Stdout)
			fmt.Printf("(%s completed in %v)\n", name, time.Since(start).Round(time.Millisecond))
		}
		fmt.Println()
		if *outDir != "" {
			f, err := os.Create(filepath.Join(*outDir, name+".csv"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "tapsim: -out: %v\n", err)
				os.Exit(1)
			}
			tbl.RenderCSV(f)
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tapsim: -out: %v\n", err)
				os.Exit(1)
			}
		}
	}

	want := func(name string) bool {
		return *exp == "all" || strings.EqualFold(*exp, name)
	}
	matched := false

	if want("fig2") {
		matched = true
		run("fig2", func() (*trace.Table, error) {
			return experiments.Fig2(experiments.Fig2Params{
				N: *n, Tunnels: *tunnels, Length: *length,
				Trials: *trials, Seed: *seed, FullWalk: *walk,
			})
		})
	}
	if want("fig3") {
		matched = true
		run("fig3", func() (*trace.Table, error) {
			return experiments.Fig3(experiments.Fig3Params{
				N: *n, Tunnels: *tunnels, Length: *length, K: *k,
				Trials: *trials, Seed: *seed,
			})
		})
	}
	if want("fig4a") {
		matched = true
		run("fig4a", func() (*trace.Table, error) {
			return experiments.Fig4a(experiments.Fig4aParams{
				N: *n, Tunnels: *tunnels, Length: *length,
				Trials: *trials, Seed: *seed,
			})
		})
	}
	if want("fig4b") {
		matched = true
		run("fig4b", func() (*trace.Table, error) {
			return experiments.Fig4b(experiments.Fig4bParams{
				N: *n, Tunnels: *tunnels, K: *k,
				Trials: *trials, Seed: *seed,
			})
		})
	}
	if want("fig5") {
		matched = true
		run("fig5", func() (*trace.Table, error) {
			return experiments.Fig5(experiments.Fig5Params{
				N: *n, Tunnels: *tunnels, Length: *length, K: *k,
				Units: *units, Trials: *trials, Seed: *seed,
			})
		})
	}
	if want("fig6") {
		matched = true
		run("fig6", func() (*trace.Table, error) {
			p := experiments.Fig6Params{
				K: *k, Sims: *sims, Transfers: *xfers, Seed: *seed,
				WithTails: *tails, UplinkContention: *contend,
			}
			if !*paper {
				// Scale the size sweep with -n as its ceiling.
				p.Sizes = sizesUpTo(*n)
			}
			return experiments.Fig6(p)
		})
	}
	// Extension experiments (beyond the paper; see EXPERIMENTS.md). Not
	// part of "all": they answer different questions.
	if strings.EqualFold(*exp, "ext-secroute") {
		matched = true
		run("ext-secroute", func() (*trace.Table, error) {
			return experiments.ExtSecRoute(experiments.ExtSecRouteParams{
				N: *n, Trials: *trials, Seed: *seed,
			})
		})
	}
	if strings.EqualFold(*exp, "ext-detect") {
		matched = true
		run("ext-detect", func() (*trace.Table, error) {
			return experiments.ExtDetect(experiments.ExtDetectParams{
				N: *n, Length: *length, Trials: *trials, Seed: *seed,
			})
		})
	}
	if strings.EqualFold(*exp, "ext-cover") {
		matched = true
		run("ext-cover", func() (*trace.Table, error) {
			return experiments.ExtCover(experiments.ExtCoverParams{
				N: *n, Length: *length, Trials: *trials, Seed: *seed,
			})
		})
	}
	if strings.EqualFold(*exp, "ext-anon") {
		matched = true
		run("ext-anon", func() (*trace.Table, error) {
			return experiments.ExtAnon(experiments.ExtAnonParams{
				N: *n, Tunnels: *tunnels, Length: *length, K: *k,
				Trials: *trials, Seed: *seed,
			})
		})
	}
	if strings.EqualFold(*exp, "ext-session") {
		matched = true
		run("ext-session", func() (*trace.Table, error) {
			return experiments.ExtSession(experiments.ExtSessionParams{
				N: *n, Length: *length, Trials: *trials, Seed: *seed,
			})
		})
	}
	if strings.EqualFold(*exp, "ext-inflight") {
		matched = true
		run("ext-inflight", func() (*trace.Table, error) {
			return experiments.ExtInflight(experiments.ExtInflightParams{
				N: *n, Length: *length, Trials: *trials, Seed: *seed,
			})
		})
	}
	if strings.EqualFold(*exp, "ext-timing") {
		matched = true
		run("ext-timing", func() (*trace.Table, error) {
			return experiments.ExtTiming(experiments.ExtTimingParams{
				N: *n, Length: *length, Trials: *trials, Seed: *seed,
			})
		})
	}
	if strings.EqualFold(*exp, "ext-reliability") {
		matched = true
		run("ext-reliability", func() (*trace.Table, error) {
			return experiments.ExtReliability(experiments.ExtReliabilityParams{
				N: *n, Trials: *trials, Seed: *seed,
			})
		})
	}
	if strings.EqualFold(*exp, "ext-selfheal") {
		matched = true
		run("ext-selfheal", func() (*trace.Table, error) {
			// K and Length stay at the experiment's defaults (k=2, l=3):
			// thin replication is the point — at the usual k=3, batch churn
			// almost never kills an anchor and both modes tie at ~1.0.
			return experiments.ExtSelfHeal(experiments.ExtSelfHealParams{
				N: *n, Trials: *trials, Seed: *seed,
			})
		})
	}
	if strings.EqualFold(*exp, "ext-scale") {
		matched = true
		var sz []int
		if *sizes != "" {
			for _, s := range strings.Split(*sizes, ",") {
				var v int
				if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &v); err != nil || v < 1 {
					fmt.Fprintf(os.Stderr, "tapsim: -sizes: bad size %q\n", s)
					os.Exit(2)
				}
				sz = append(sz, v)
			}
		}
		run("ext-scale", func() (*trace.Table, error) {
			return experiments.ExtScale(experiments.ExtScaleParams{
				Sizes: sz, Routes: *routes, Seed: *seed, Budget: *budget,
			})
		})
	}
	if strings.EqualFold(*exp, "ext-throughput") {
		matched = true
		var ws []int
		if *windows != "" {
			for _, s := range strings.Split(*windows, ",") {
				var v int
				if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &v); err != nil || v < 1 {
					fmt.Fprintf(os.Stderr, "tapsim: -windows: bad window %q\n", s)
					os.Exit(2)
				}
				ws = append(ws, v)
			}
		}
		run("ext-throughput", func() (*trace.Table, error) {
			return experiments.ExtThroughput(experiments.ExtThroughputParams{
				N: *n, Length: *length, Flows: *flows, Windows: ws,
				Clients: *clients, FlowBytes: *fbytes, Seed: *seed,
			})
		})
	}
	if strings.EqualFold(*exp, "ext") {
		matched = true
		run("ext-secroute", func() (*trace.Table, error) {
			return experiments.ExtSecRoute(experiments.ExtSecRouteParams{Trials: *trials, Seed: *seed})
		})
		run("ext-detect", func() (*trace.Table, error) {
			return experiments.ExtDetect(experiments.ExtDetectParams{Trials: *trials, Seed: *seed})
		})
		run("ext-cover", func() (*trace.Table, error) {
			return experiments.ExtCover(experiments.ExtCoverParams{Trials: *trials, Seed: *seed})
		})
		run("ext-anon", func() (*trace.Table, error) {
			return experiments.ExtAnon(experiments.ExtAnonParams{Trials: *trials, Seed: *seed})
		})
		run("ext-session", func() (*trace.Table, error) {
			return experiments.ExtSession(experiments.ExtSessionParams{Trials: *trials, Seed: *seed})
		})
		run("ext-inflight", func() (*trace.Table, error) {
			return experiments.ExtInflight(experiments.ExtInflightParams{Trials: *trials, Seed: *seed})
		})
		run("ext-timing", func() (*trace.Table, error) {
			return experiments.ExtTiming(experiments.ExtTimingParams{Trials: *trials, Seed: *seed})
		})
		run("ext-reliability", func() (*trace.Table, error) {
			return experiments.ExtReliability(experiments.ExtReliabilityParams{Trials: *trials, Seed: *seed})
		})
		run("ext-selfheal", func() (*trace.Table, error) {
			return experiments.ExtSelfHeal(experiments.ExtSelfHealParams{Trials: *trials, Seed: *seed})
		})
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "tapsim: unknown experiment %q (want fig2|fig3|fig4a|fig4b|fig5|fig6|all|ext|ext-secroute|ext-detect|ext-cover|ext-anon|ext-session|ext-inflight|ext-timing|ext-reliability|ext-selfheal|ext-scale|ext-throughput)\n", *exp)
		os.Exit(2)
	}
}

// sizesUpTo picks a log-spaced size sweep capped at max.
func sizesUpTo(max int) []int {
	all := []int{100, 300, 1000, 3000, 10000}
	var out []int
	for _, s := range all {
		if s <= max {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = []int{max}
	}
	return out
}
