// Command tapcheck runs the deterministic simulation checker: it
// generates seeded churn/fault/traffic scenarios, replays them on the
// discrete-event simulator with every runtime invariant armed, and — on a
// violation — shrinks the event schedule to a minimal counterexample and
// dumps a replayable trace.
//
// Usage:
//
//	tapcheck -seeds 200                      sweep seeds 1..200
//	tapcheck -seeds 200 -profile all         sweep every profile
//	tapcheck -seed 1337 -profile full        replay one seed
//	tapcheck -seeds 0 -budget 10m            sweep until the wall clock runs out
//
// Every run is a pure function of (seed, profile): a violation reported
// here reproduces byte-for-byte with `tapcheck -seed S -profile P`, and
// the dumped trace replays the shrunk schedule the same way. Exit status
// is non-zero iff any invariant fired.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"tap/internal/dst"
)

type job struct {
	seed    uint64
	profile dst.Profile
}

type finding struct {
	job
	violation *dst.Violation
	err       error
	trace     []byte
	shrunk    int // events after shrinking
	original  int // events before shrinking
}

func main() {
	var (
		seeds    = flag.Int("seeds", 50, "number of seeds to sweep per profile (0: unbounded, needs -budget)")
		start    = flag.Uint64("start", 1, "first seed of the sweep")
		one      = flag.Uint64("seed", 0, "replay a single seed and exit (overrides -seeds)")
		profile  = flag.String("profile", "full", "scenario profile: full|membership|storage|pool|stream|all")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel scenario runners")
		budget   = flag.Duration("budget", 0, "wall-clock budget; stop dispatching new seeds after this (0: none)")
		shrinkN  = flag.Int("shrink-budget", dst.DefaultShrinkRuns, "max replays the shrinker may spend per violation")
		traceDir = flag.String("trace-dir", "", "write one <profile>-seed<N>.json trace per violation into this directory")
		verbose  = flag.Bool("v", false, "log every seed, not just violations")
		mutate   = flag.String("mutate", "", "plant a known bug to exercise the violation path: "+
			"skip-migration|corrupt-leaf|drop-onion-layer|leak-payload|disable-ack-dedup|"+
			"stall-rebuild|uncapped-rebuild|stream-reorder-bypass|stream-window-bypass")
	)
	flag.Parse()

	mut, err := parseMutation(*mutate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tapcheck: %v\n", err)
		os.Exit(2)
	}

	profiles, err := parseProfiles(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tapcheck: %v\n", err)
		os.Exit(2)
	}
	if *seeds <= 0 && *budget <= 0 && *one == 0 {
		fmt.Fprintln(os.Stderr, "tapcheck: -seeds 0 needs a -budget to terminate")
		os.Exit(2)
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "tapcheck: -trace-dir: %v\n", err)
			os.Exit(2)
		}
	}
	if *workers < 1 {
		*workers = 1
	}

	jobs := make(chan job)
	results := make(chan finding)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				results <- check(j, mut, *shrinkN)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	deadline := time.Time{}
	if *budget > 0 {
		deadline = time.Now().Add(*budget)
	}
	go func() {
		defer close(jobs)
		if *one != 0 {
			for _, p := range profiles {
				jobs <- job{seed: *one, profile: p}
			}
			return
		}
		for i := 0; *seeds <= 0 || i < *seeds; i++ {
			if !deadline.IsZero() && time.Now().After(deadline) {
				return
			}
			for _, p := range profiles {
				jobs <- job{seed: *start + uint64(i), profile: p}
			}
		}
	}()

	began := time.Now()
	var ran int
	var bad []finding
	for f := range results {
		ran++
		switch {
		case f.err != nil:
			bad = append(bad, f)
			fmt.Printf("ERROR %-10s seed %-6d %v\n", f.profile, f.seed, f.err)
		case f.violation != nil:
			bad = append(bad, f)
			fmt.Printf("FAIL  %-10s seed %-6d %s (shrunk %d -> %d events)\n",
				f.profile, f.seed, f.violation, f.original, f.shrunk)
		case *verbose:
			fmt.Printf("ok    %-10s seed %d\n", f.profile, f.seed)
		}
	}

	sort.Slice(bad, func(i, j int) bool {
		if bad[i].profile != bad[j].profile {
			return bad[i].profile < bad[j].profile
		}
		return bad[i].seed < bad[j].seed
	})
	for _, f := range bad {
		if f.trace == nil || *traceDir == "" {
			continue
		}
		name := fmt.Sprintf("%s-seed%d.json", f.profile, f.seed)
		path := filepath.Join(*traceDir, name)
		if err := os.WriteFile(path, f.trace, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tapcheck: writing %s: %v\n", path, err)
		} else {
			fmt.Printf("trace %s\n", path)
		}
	}

	fmt.Printf("tapcheck: %d scenarios in %v, %d violations\n",
		ran, time.Since(began).Round(time.Millisecond), len(bad))
	if len(bad) > 0 {
		fmt.Println("reproduce any line with: tapcheck -seed <N> -profile <P>")
		os.Exit(1)
	}
}

// check runs one seeded scenario and, on a violation, shrinks it and
// renders the trace artifact.
func check(j job, mut dst.Mutations, shrinkBudget int) finding {
	f := finding{job: j}
	sc := dst.Gen(j.seed, j.profile)
	f.original = len(sc.Events)
	res := dst.Run(sc, mut)
	if res.Err != nil {
		f.err = res.Err
		return f
	}
	if res.Violation == nil {
		return f
	}
	sr := dst.Shrink(sc, mut, shrinkBudget)
	f.violation = sr.Violation
	f.shrunk = len(sr.Scenario.Events)
	if blob, err := dst.NewTrace(sr).JSON(); err == nil {
		f.trace = blob
	}
	return f
}

func parseMutation(s string) (dst.Mutations, error) {
	var m dst.Mutations
	switch s {
	case "":
	case "skip-migration":
		m.SkipMigration = true
	case "corrupt-leaf":
		m.CorruptLeaf = true
	case "drop-onion-layer":
		m.DropOnionLayer = true
	case "leak-payload":
		m.LeakPayload = true
	case "disable-ack-dedup":
		m.DisableAckDedup = true
	case "stall-rebuild":
		m.StallRebuild = true
	case "uncapped-rebuild":
		m.UncappedRebuild = true
	case "stream-reorder-bypass":
		m.StreamReorderBypass = true
	case "stream-window-bypass":
		m.StreamWindowBypass = true
	default:
		return m, fmt.Errorf("unknown mutation %q", s)
	}
	return m, nil
}

func parseProfiles(s string) ([]dst.Profile, error) {
	switch dst.Profile(s) {
	case dst.ProfileFull, dst.ProfileMembership, dst.ProfileStorage, dst.ProfilePool,
		dst.ProfileStream:
		return []dst.Profile{dst.Profile(s)}, nil
	}
	if s == "all" {
		return []dst.Profile{dst.ProfileFull, dst.ProfileMembership,
			dst.ProfileStorage, dst.ProfilePool, dst.ProfileStream}, nil
	}
	return nil, fmt.Errorf("unknown profile %q (full|membership|storage|pool|stream|all)", s)
}
