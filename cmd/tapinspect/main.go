// Command tapinspect builds a TAP deployment and prints its internals:
// overlay statistics, a sample node's routing state, a routed path, a
// tunnel's anchors with their replica sets, and the result of the
// overlay/storage invariant checkers. It is the debugging companion to
// cmd/tapsim.
//
// The `metrics` subcommand instead inspects a live process:
//
//	tapinspect metrics -addr 127.0.0.1:9090
//
// scrapes the given /metrics endpoint (tapnode or tapboard started with
// -metrics-addr), strictly validates the exposition, and pretty-prints
// it grouped by family. It exits non-zero on an unreachable endpoint or
// malformed output, which the nightly compose smoke relies on.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"tap/internal/core"
	"tap/internal/id"
	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/tha"
	"tap/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "metrics" {
		runMetrics(os.Args[2:])
		return
	}
	var (
		n      = flag.Int("n", 1000, "network size")
		k      = flag.Int("k", 3, "replication factor")
		length = flag.Int("length", 5, "tunnel length")
		seed   = flag.Uint64("seed", 1, "random seed")
		routes = flag.Int("routes", 5, "sample routes to trace")
	)
	flag.Parse()

	root := rng.New(*seed)
	ov, err := pastry.Build(pastry.DefaultConfig(), *n, root.Split("overlay"))
	if err != nil {
		fail(err)
	}
	mgr := past.NewManager(ov, *k)
	dir := tha.NewDirectory(ov, mgr)
	svc := core.NewService(ov, dir, root.Split("svc"))

	fmt.Printf("overlay: %d nodes, b=%d, leaf=%d, k=%d, seed=%d\n\n",
		ov.Size(), ov.Config().B, ov.Config().LeafSize, *k, *seed)

	// Routing state of a sample node.
	sample := ov.RandomLive(root.Split("sample"))
	fmt.Printf("sample node %s (addr %d)\n", sample.ID(), sample.Addr())
	fmt.Printf("  leaf set (%d entries):\n", sample.Leaf.Size())
	for _, r := range sample.Leaf.Members() {
		fmt.Printf("    %s\n", r)
	}
	fmt.Printf("  routing table: %d rows, %d entries\n", sample.RT.Rows(), sample.RT.EntryCount())
	for row := 0; row < sample.RT.Rows(); row++ {
		line := fmt.Sprintf("    row %d:", row)
		cnt := 0
		for d := 0; d < 1<<ov.Config().B; d++ {
			if e, ok := sample.RT.Get(row, d); ok {
				line += fmt.Sprintf(" %x→%s", d, e.ID.Short())
				cnt++
			}
		}
		if cnt > 0 {
			fmt.Println(line)
		}
	}
	fmt.Println()

	// Sample routes.
	keys := root.Split("keys")
	for i := 0; i < *routes; i++ {
		var key id.ID
		keys.Bytes(key[:])
		from := ov.RandomLive(keys)
		path, err := ov.RoutePath(from.Ref().Addr, key)
		if err != nil {
			fail(err)
		}
		fmt.Printf("route %s from %s: %d hops:", key.Short(), from.ID().Short(), len(path)-1)
		for _, r := range path {
			fmt.Printf(" %s", r.ID.Short())
		}
		fmt.Println()
	}
	fmt.Println()

	// A tunnel and its anchors.
	node := ov.RandomLive(root.Split("pick"))
	in, err := core.NewInitiator(svc, node, root.Split("init"))
	if err != nil {
		fail(err)
	}
	if err := in.DeployDirect(*length + 3); err != nil {
		fail(err)
	}
	tun, err := in.FormTunnel(*length)
	if err != nil {
		fail(err)
	}
	fmt.Printf("tunnel of length %d owned by %s:\n", tun.Length(), node.ID().Short())
	for i, h := range tun.Hops {
		hop, _ := dir.HopNode(h.HopID)
		fmt.Printf("  hop %d: hopid %s  hop-node %s  replicas:", i+1, h.HopID.Short(), hop.ID().Short())
		for _, a := range dir.ReplicaAddrs(h.HopID) {
			fmt.Printf(" %d", a)
		}
		fmt.Println()
	}
	fmt.Println()

	// Storage distribution: how evenly anchors spread over nodes.
	var stored trace.Sample
	for _, r := range ov.LiveRefs() {
		if st := mgr.StoreAt(r.Addr); st != nil {
			stored.Add(float64(st.Len()))
		} else {
			stored.Add(0)
		}
	}
	fmt.Printf("anchor storage per node: mean %.2f, median %.0f, p95 %.0f, max %.0f\n",
		stored.Mean(), stored.Median(), stored.P95(), stored.Max())

	// Routing cost distribution.
	var hops trace.Sample
	hs := root.Split("hopsample")
	for i := 0; i < 200; i++ {
		var key id.ID
		hs.Bytes(key[:])
		_, h, err := ov.Lookup(ov.RandomLive(hs).Ref().Addr, key)
		if err != nil {
			fail(err)
		}
		hops.Add(float64(h))
	}
	fmt.Printf("route hops over 200 lookups: mean %.2f, p95 %.0f (log_16 N = %.2f)\n\n",
		hops.Mean(), hops.P95(), math.Log(float64(ov.Size()))/math.Log(16))

	// Invariants.
	if err := ov.CheckInvariants(); err != nil {
		fail(fmt.Errorf("overlay invariants: %w", err))
	}
	if err := mgr.CheckInvariants(); err != nil {
		fail(fmt.Errorf("storage invariants: %w", err))
	}
	fmt.Println("invariants: overlay OK, storage OK")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tapinspect: %v\n", err)
	os.Exit(1)
}
