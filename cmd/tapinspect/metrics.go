package main

import (
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"tap/internal/obs"
)

// runMetrics implements `tapinspect metrics`: scrape one process's
// /metrics endpoint, strictly parse the exposition, and pretty-print
// it grouped by family. An unreachable endpoint or an unparseable
// exposition exits non-zero — the nightly compose smoke uses that as
// its format gate.
func runMetrics(args []string) {
	fs := flag.NewFlagSet("tapinspect metrics", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "metrics endpoint (host:port or full URL)")
	timeout := fs.Duration("timeout", 5*time.Second, "scrape timeout")
	filter := fs.String("filter", "", "only print families whose name contains this substring")
	raw := fs.Bool("raw", false, "dump the exposition verbatim after validating it")
	fs.Parse(args)

	url := *addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.HasSuffix(url, "/metrics") {
		url = strings.TrimSuffix(url, "/") + "/metrics"
	}

	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(url)
	if err != nil {
		fail(fmt.Errorf("scrape %s: %w", url, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("scrape %s: status %s", url, resp.Status))
	}
	snap, err := obs.ParseText(resp.Body)
	if err != nil {
		fail(fmt.Errorf("scrape %s: bad exposition: %w", url, err))
	}

	if *raw {
		// Re-render from the parsed form so what prints is exactly what
		// validated.
		for _, s := range snap.Samples {
			fmt.Printf("%s%s %s\n", s.Name, renderSampleLabels(s), formatValue(s.Value))
		}
		return
	}

	// Group samples by family: histogram series (_bucket/_sum/_count)
	// fold back under their base name.
	byFamily := make(map[string][]obs.Sample)
	var names []string
	for _, s := range snap.Samples {
		name := familyOf(s.Name, snap)
		if *filter != "" && !strings.Contains(name, *filter) {
			continue
		}
		if _, seen := byFamily[name]; !seen {
			names = append(names, name)
		}
		byFamily[name] = append(byFamily[name], s)
	}
	sort.Strings(names)
	for _, name := range names {
		typ := snap.Types[name]
		if typ == "" {
			typ = "untyped"
		}
		fmt.Printf("%s (%s)\n", name, typ)
		for _, s := range byFamily[name] {
			label := renderSampleLabels(s)
			suffix := strings.TrimPrefix(s.Name, name)
			fmt.Printf("  %-40s %s\n", suffix+label, formatValue(s.Value))
		}
	}
	fmt.Printf("\n%d samples in %d families from %s\n", len(snap.Samples), len(names), url)
}

// familyOf maps a sample name to its family: histogram suffixes strip
// back to the TYPE-declared base name.
func familyOf(name string, snap *obs.Snapshot) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suf); base != name && snap.Types[base] == "histogram" {
			return base
		}
	}
	return name
}

func renderSampleLabels(s obs.Sample) string {
	if len(s.Labels) == 0 {
		return ""
	}
	names := make([]string, 0, len(s.Labels))
	for n := range s.Labels {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%q", n, s.Labels[n])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
