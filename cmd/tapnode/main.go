// Command tapnode runs one TAP overlay node as an OS process.
//
// A node dials the bulletin board, registers its TCP endpoint, receives
// a transport address and the peer table, and then serves overlay
// traffic: installing tunnel hop anchors, peeling forward and reply
// onion layers, and echoing exit payloads back down reply tunnels.
//
//	tapnode -board 127.0.0.1:7070
//
// With -client the process instead acts as an initiator: it waits for
// -quorum members, carves the other members into a forward tunnel, a
// reply tunnel, and a destination, streams -bytes of random payload
// through the overlay in onion-sealed chunks, and exits 0 printing
// "ROUNDTRIP OK" when the echo matches.
package main

import (
	"bytes"
	"crypto/rand"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"tap/internal/board"
	"tap/internal/obs"
	"tap/internal/procnode"
	"tap/internal/transport"
	"tap/internal/transport/tcptransport"
)

func main() {
	boardAddr := flag.String("board", "127.0.0.1:7070", "bulletin board host:port")
	listen := flag.String("listen", "127.0.0.1:0", "host:port for overlay traffic")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "board heartbeat interval")
	refresh := flag.Duration("refresh", 2*time.Second, "peer-table refresh interval (server mode)")
	quorum := flag.Int("quorum", 1, "wait until the board has this many members")
	wait := flag.Duration("wait", 60*time.Second, "how long to wait for the quorum")
	client := flag.Bool("client", false, "run one onion-sealed stream round-trip and exit")
	nbytes := flag.Int("bytes", 2048, "client payload size")
	chunk := flag.Int("chunk", 512, "client stream chunk size")
	fwHops := flag.Int("fwhops", 3, "client forward-tunnel length")
	rpHops := flag.Int("rphops", 2, "client reply-tunnel length")
	verbose := flag.Bool("v", false, "log relay activity")
	metricsAddr := flag.String("metrics-addr", "", "host:port for /metrics and /debug/pprof (empty disables)")
	linger := flag.Bool("linger", false, "client mode: after printing the result, wait for stdin EOF before exiting")
	flag.Parse()

	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}

	// The metrics registry is nil unless asked for: every layer below
	// treats that as the no-op sink.
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		obs.RegisterRuntimeMetrics(reg)
		bound, stopMetrics, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer stopMetrics()
		// Scraped by the integration test; keep the format stable.
		fmt.Printf("tapnode metrics listening on %s\n", bound)
	}

	tr := tcptransport.New(tcptransport.Config{Codec: procnode.Codec{}, Logf: logf, Registry: reg})
	defer tr.Close()
	hostport, err := tr.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}

	cli, err := board.Dial(*boardAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	addr, peers, err := cli.Register(hostport)
	if err != nil {
		log.Fatal(err)
	}
	cli.StartHeartbeat(*heartbeat)

	node := procnode.New(tr, addr, logf, reg)
	node.SetPeers(peers)
	fmt.Printf("tapnode addr=%d listening on %s\n", addr, hostport)

	if *quorum > 1 {
		peers, err = cli.WaitForPeers(*quorum, *wait)
		if err != nil {
			log.Fatal(err)
		}
		node.SetPeers(peers)
	}

	if *client {
		runClient(node, peers, addr, *fwHops, *rpHops, *nbytes, *chunk)
		if *linger {
			// Hold the process (and its /metrics endpoint) open until the
			// parent closes our stdin — the integration test scrapes the
			// client's counters in this window, then releases us.
			io.Copy(io.Discard, os.Stdin)
		}
		return
	}

	// Server mode: keep the peer table fresh so late joiners (like the
	// client) are dialable, and serve until signaled.
	go func() {
		tick := time.NewTicker(*refresh)
		defer tick.Stop()
		for range tick.C {
			if p, err := cli.Peers(); err == nil {
				node.SetPeers(p)
			}
		}
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}

// runClient carves the membership into tunnel roles and round-trips an
// onion-sealed stream. Exits the process with the outcome.
func runClient(node *procnode.Node, peers map[transport.Addr]string, self transport.Addr, fw, rp, nbytes, chunk int) {
	var others []transport.Addr
	for a := range peers {
		if a != self {
			others = append(others, a)
		}
	}
	sort.Slice(others, func(i, j int) bool { return others[i] < others[j] })
	// The destination is the highest-addressed member and may coincide
	// with a hop host (hosting an anchor and answering as responder are
	// independent roles); only the hop sets themselves must be disjoint.
	if len(others) < fw+rp {
		log.Fatalf("need %d other members for fw %d + rp %d hops, have %d", fw+rp, fw, rp, len(others))
	}
	cfg := procnode.StreamConfig{
		ForwardHops: others[:fw],
		ReplyHops:   others[fw : fw+rp],
		Dest:        others[len(others)-1],
		ChunkSize:   chunk,
	}
	payload := make([]byte, nbytes)
	if _, err := rand.Read(payload); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	echo, err := node.RoundTripStream(cfg, payload)
	if err != nil {
		log.Fatalf("ROUNDTRIP FAILED: %v", err)
	}
	if !bytes.Equal(echo, payload) {
		log.Fatalf("ROUNDTRIP FAILED: echo mismatch (%d vs %d bytes)", len(echo), len(payload))
	}
	fmt.Printf("ROUNDTRIP OK: %d bytes through %d forward + %d reply hops in %v\n",
		nbytes, fw, rp, time.Since(start).Round(time.Millisecond))
}
